package store_test

import (
	"path/filepath"
	"strings"
	"testing"

	"s3cbcd/internal/faultfs"
	"s3cbcd/internal/hilbert"
	"s3cbcd/internal/obs"
	"s3cbcd/internal/store"
)

func countTestDB(t *testing.T) *store.DB {
	t.Helper()
	curve, err := hilbert.New(4, 8)
	if err != nil {
		t.Fatal(err)
	}
	recs := make([]store.Record, 64)
	for i := range recs {
		var fp [4]byte
		for d := range fp {
			fp[d] = byte((i*37 + d*11) % 251)
		}
		recs[i] = store.Record{ID: uint32(i % 8), TC: uint32(i), FP: fp[:]}
	}
	db, err := store.Build(curve, recs)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// A write-read round trip through a CountingFS accounts for every byte
// and fsync the store issues, and the counters render through a
// registry.
func TestCountingFSRoundTrip(t *testing.T) {
	db := countTestDB(t)
	cfs := store.NewCountingFS(store.OSFS)
	path := filepath.Join(t.TempDir(), "seg.s3db")

	if err := db.WriteFileFS(cfs, path, 4); err != nil {
		t.Fatal(err)
	}
	if cfs.WrittenBytes() == 0 {
		t.Error("write counted no bytes")
	}
	if cfs.Syncs() == 0 {
		t.Error("write counted no fsyncs")
	}
	written := cfs.WrittenBytes()

	got, err := store.ReadFileFS(cfs, path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != db.Len() {
		t.Fatalf("read back %d records, want %d", got.Len(), db.Len())
	}
	if cfs.ReadBytes() == 0 {
		t.Error("read counted no bytes")
	}
	if cfs.WrittenBytes() != written {
		t.Error("reading changed the written-bytes counter")
	}
	if cfs.IOErrors() != 0 {
		t.Errorf("clean round trip counted %d I/O errors", cfs.IOErrors())
	}

	r := obs.NewRegistry()
	cfs.RegisterMetrics(r)
	var b strings.Builder
	r.WritePrometheus(&b)
	for _, want := range []string{
		"s3_store_read_bytes_total", "s3_store_written_bytes_total",
		"s3_store_syncs_total", "s3_store_io_errors_total",
	} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("rendering lacks %s", want)
		}
	}
}

// CountingFS composes with faultfs: injected faults surface in the
// error counter like real ones.
func TestCountingFSCountsInjectedFaults(t *testing.T) {
	db := countTestDB(t)
	ffs := faultfs.New(store.OSFS, func(op faultfs.Op, _ string, _ int) faultfs.Action {
		if op == faultfs.OpSync {
			return faultfs.Fail
		}
		return faultfs.Pass
	})
	cfs := store.NewCountingFS(ffs)
	err := db.WriteFileFS(cfs, filepath.Join(t.TempDir(), "seg.s3db"), 4)
	if err == nil {
		t.Fatal("write succeeded despite injected sync failure")
	}
	if cfs.IOErrors() == 0 {
		t.Error("injected fault not counted as an I/O error")
	}
}
