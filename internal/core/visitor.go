package core

import (
	"math"

	"s3cbcd/internal/hilbert"
)

// massCache memoizes the per-dimension model mass of every dyadic
// interval a query's descents encounter. Block bounds are always dyadic
// (they come from repeated halving), so interval (lo, hi) of extent e
// has the unique id side/e + lo/e in [1, 2*side). The threshold search
// runs incremental expansions over overlapping node sets; the cache makes
// the repeats nearly free.
type massCache struct {
	side uint32
	// gen is the current query's generation. A slot is valid only when
	// gens[slot] == gen, so invalidating the whole cache is a single
	// increment instead of a rewrite of every value — the engine resets
	// the cache before each planned query, and the dims*2*side refill
	// (~10k floats at D=20, K=8) used to dominate small plans.
	gen  uint32
	gens []uint32
	vals []float64 // dims * (2*side) entries
}

func newMassCache(dims int, side uint32) *massCache {
	return &massCache{
		side: side,
		gen:  1,
		gens: make([]uint32, dims*int(2*side)),
		vals: make([]float64, dims*int(2*side)),
	}
}

// reset invalidates every entry in O(1) so the cache can be reused for a
// new query without reallocating — the engine's per-worker query contexts
// depend on this to keep the planning hot path allocation-free.
func (mc *massCache) reset() {
	mc.gen++
	if mc.gen == 0 {
		// Generation wraparound (once per 2^32 resets): stale slots could
		// collide with the restarted counter, so pay one full clear.
		for i := range mc.gens {
			mc.gens[i] = 0
		}
		mc.gen = 1
	}
}

// get returns P(ΔS_dim puts the reference inside [lo, hi)) under model m
// for query coordinate q, extending edge intervals to infinity (reference
// fingerprints cannot lie outside the grid, so tail mass belongs to the
// boundary blocks) and centring unit cells on integer coordinates.
func (mc *massCache) get(m Model, q []float64, dim int, lo, hi uint32) float64 {
	e := hi - lo
	id := mc.side/e + lo/e
	idx := dim*int(2*mc.side) + int(id)
	if mc.gens[idx] == mc.gen {
		return mc.vals[idx]
	}
	a, b := float64(lo)-0.5, float64(hi)-0.5
	if lo == 0 {
		a = math.Inf(-1)
	}
	if hi == mc.side {
		b = math.Inf(1)
	}
	v := m.ComponentMass(dim, a-q[dim], b-q[dim])
	mc.vals[idx] = v
	mc.gens[idx] = mc.gen
	return v
}

// statVisitor implements the statistical filtering rule incrementally:
// the node mass is a product of one factor per dimension, and every
// descent step replaces exactly one factor. One visitor serves every
// descent of a threshold search — reset repositions it at the root
// without reallocating its factor, stack, or interval storage.
type statVisitor struct {
	mc      *massCache
	m       Model
	q       []float64
	t       float64
	factors []float64 // current factor per dimension (1 at the root)
	prod    float64   // current node mass
	stack   []statFrame
	ivs     []hilbert.Interval
	blocks  int
	total   float64
	nodes   int // Enter calls across all descents since construction
}

type statFrame struct {
	dim    int
	factor float64
	prod   float64
}

func newStatVisitor(mc *massCache, m Model, q []float64, t float64) *statVisitor {
	v := &statVisitor{mc: mc, m: m, q: q, t: t,
		factors: make([]float64, len(q)), prod: 1,
		stack: make([]statFrame, 0, 256),
	}
	for i := range v.factors {
		v.factors[i] = 1
	}
	return v
}

// reset repositions the visitor at the root for a fresh descent at
// threshold t, reusing every buffer. The cumulative node counter is
// preserved; it spans the whole threshold search.
func (v *statVisitor) reset(t float64) {
	v.t = t
	v.prod = 1
	for i := range v.factors {
		v.factors[i] = 1
	}
	v.stack = v.stack[:0]
	v.ivs = v.ivs[:0]
	v.blocks = 0
	v.total = 0
}

// Enter implements hilbert.StepVisitor. The division is safe: factor[dim]
// bounds the parent mass from above and the parent survived mass > t > 0.
func (v *statVisitor) Enter(dim int, lo, hi uint32) bool {
	v.nodes++
	f := v.mc.get(v.m, v.q, dim, lo, hi)
	np := v.prod / v.factors[dim] * f
	if np <= v.t {
		return false
	}
	v.stack = append(v.stack, statFrame{dim: dim, factor: v.factors[dim], prod: v.prod})
	v.factors[dim] = f
	v.prod = np
	return true
}

// Leave implements hilbert.StepVisitor.
func (v *statVisitor) Leave(int) {
	fr := v.stack[len(v.stack)-1]
	v.stack = v.stack[:len(v.stack)-1]
	v.factors[fr.dim] = fr.factor
	v.prod = fr.prod
}

// Leaf implements hilbert.StepVisitor.
func (v *statVisitor) Leaf(b hilbert.Block) bool {
	v.total += v.prod
	v.blocks++
	v.ivs = append(v.ivs, hilbert.Interval{Start: b.Start, End: b.End})
	return true
}

// rangeVisitor implements the geometric filtering rule incrementally: the
// squared distance from the query to a node rectangle is a sum of one
// term per dimension.
type rangeVisitor struct {
	q       []float64
	epsSq   float64
	contrib []float64
	sum     float64
	stack   []rangeFrame
	ivs     []hilbert.Interval
	blocks  int
	nodes   int
}

type rangeFrame struct {
	dim     int
	contrib float64
}

func newRangeVisitor(q []float64, eps float64) *rangeVisitor {
	return &rangeVisitor{q: q, epsSq: eps * eps,
		contrib: make([]float64, len(q)),
		stack:   make([]rangeFrame, 0, 256),
	}
}

// dimDistSq is the squared distance from coordinate v to the nearest
// integer grid point in [lo, hi).
func dimDistSq(v float64, lo, hi uint32) float64 {
	if lov := float64(lo); v < lov {
		d := lov - v
		return d * d
	}
	if hiv := float64(hi - 1); v > hiv {
		d := v - hiv
		return d * d
	}
	return 0
}

// Enter implements hilbert.StepVisitor.
func (v *rangeVisitor) Enter(dim int, lo, hi uint32) bool {
	v.nodes++
	c := dimDistSq(v.q[dim], lo, hi)
	ns := v.sum - v.contrib[dim] + c
	if ns > v.epsSq {
		return false
	}
	v.stack = append(v.stack, rangeFrame{dim: dim, contrib: v.contrib[dim]})
	v.contrib[dim] = c
	v.sum = ns
	return true
}

// Leave implements hilbert.StepVisitor.
func (v *rangeVisitor) Leave(int) {
	fr := v.stack[len(v.stack)-1]
	v.stack = v.stack[:len(v.stack)-1]
	v.sum += fr.contrib - v.contrib[fr.dim]
	v.contrib[fr.dim] = fr.contrib
}

// Leaf implements hilbert.StepVisitor.
func (v *rangeVisitor) Leaf(b hilbert.Block) bool {
	v.blocks++
	v.ivs = append(v.ivs, hilbert.Interval{Start: b.Start, End: b.End})
	return true
}
