package core

import (
	"math/rand"
	"testing"
)

func TestSearchKNNProbRetrievesAtConfidence(t *testing.T) {
	db := testDB(t, 8, 2500, 71)
	ix, _ := NewIndex(db, 0)
	r := rand.New(rand.NewSource(72))
	const sigma = 10.0
	m := IsoNormal{D: 8, Sigma: sigma}
	for _, conf := range []float64{0.5, 0.9} {
		hits, trials := 0, 150
		for i := 0; i < trials; i++ {
			q, src := distortedQuery(r, db, sigma)
			matches, stats, err := ix.SearchKNNProb(q, 10, conf, m)
			if err != nil {
				t.Fatal(err)
			}
			if stats.VisitedMass < conf {
				t.Fatalf("visited mass %v below confidence %v", stats.VisitedMass, conf)
			}
			for _, match := range matches {
				if match.Pos == src {
					hits++
					break
				}
			}
		}
		rate := float64(hits) / float64(trials)
		// The source must appear at roughly >= confidence (minus model
		// imperfection from clamping/quantization and the k cut).
		if rate < conf-0.12 {
			t.Errorf("confidence %v: retrieval rate %v", conf, rate)
		}
	}
}

func TestSearchKNNProbCheaperThanExact(t *testing.T) {
	db := testDB(t, 8, 3000, 73)
	ix, _ := NewIndex(db, 0)
	r := rand.New(rand.NewSource(74))
	q, _ := distortedQuery(r, db, 10)
	m := IsoNormal{D: 8, Sigma: 10}
	_, exactStats, err := ix.SearchKNN(q, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	_, probStats, err := ix.SearchKNNProb(q, 10, 0.8, m)
	if err != nil {
		t.Fatal(err)
	}
	if probStats.Scanned >= exactStats.Scanned {
		t.Fatalf("probabilistic scanned %d, exact %d — no saving", probStats.Scanned, exactStats.Scanned)
	}
}

func TestSearchKNNProbValidation(t *testing.T) {
	db := testDB(t, 6, 50, 75)
	ix, _ := NewIndex(db, 0)
	m := IsoNormal{D: 6, Sigma: 5}
	q := make([]byte, 6)
	if _, _, err := ix.SearchKNNProb(q, 0, 0.8, m); err == nil {
		t.Error("k=0 accepted")
	}
	if _, _, err := ix.SearchKNNProb(q, 3, 0, m); err == nil {
		t.Error("confidence=0 accepted")
	}
	if _, _, err := ix.SearchKNNProb(q, 3, 1.5, m); err == nil {
		t.Error("confidence>1 accepted")
	}
	if _, _, err := ix.SearchKNNProb(q, 3, 0.8, nil); err == nil {
		t.Error("nil model accepted")
	}
	if _, _, err := ix.SearchKNNProb(make([]byte, 2), 3, 0.8, m); err == nil {
		t.Error("short query accepted")
	}
}
