package obs

import (
	"strings"
	"testing"
)

func TestTraceHeaderRoundTrip(t *testing.T) {
	cases := []SpanContext{
		{TraceID: 1, SpanID: 0, Sampled: false, Depth: 0},
		{TraceID: 0xdeadbeefcafef00d, SpanID: 0x0123456789abcdef, Sampled: true, Depth: 3},
		{TraceID: ^uint64(0), SpanID: ^uint64(0), Sampled: true, Depth: MaxTraceDepth},
	}
	for _, sc := range cases {
		enc := sc.String()
		if len(enc) != traceHeaderLen {
			t.Fatalf("encoded length %d: %q", len(enc), enc)
		}
		got, ok := ParseTraceHeader(enc)
		if !ok || got != sc {
			t.Fatalf("round trip %+v -> %q -> %+v ok=%v", sc, enc, got, ok)
		}
	}
}

func TestTraceHeaderRejects(t *testing.T) {
	valid := SpanContext{TraceID: 7, SpanID: 9, Sampled: true, Depth: 1}.String()
	bad := []string{
		"",
		"short",
		valid + "x",                         // oversized
		valid[:len(valid)-1],                // truncated
		strings.Replace(valid, "-", "_", 1), // misplaced separator
		strings.Replace(valid, "0", "g", 1), // bad hex
		valid[:37] + "ff",                   // depth bomb (255)
		valid[:37] + "09",                   // depth just past the cap
		SpanContext{TraceID: 0, SpanID: 9}.String(), // zero trace id
		strings.Repeat("-", traceHeaderLen),
	}
	for _, s := range bad {
		if sc, ok := ParseTraceHeader(s); ok {
			t.Fatalf("accepted %q -> %+v", s, sc)
		}
	}
	// Unknown flag bits are tolerated (forward compatibility); only bit
	// 0 is read.
	flagged := valid[:34] + "03" + valid[36:]
	if sc, ok := ParseTraceHeader(flagged); !ok || !sc.Sampled {
		t.Fatalf("flags %q -> %+v ok=%v", flagged, sc, ok)
	}
	// Uppercase hex decodes too.
	upper := strings.ToUpper(valid)
	if sc, ok := ParseTraceHeader(upper); !ok || sc.TraceID != 7 {
		t.Fatalf("uppercase %q -> %+v ok=%v", upper, sc, ok)
	}
}

func TestTraceHeaderParseNoAllocs(t *testing.T) {
	valid := SpanContext{TraceID: 7, SpanID: 9, Sampled: true, Depth: 1}.String()
	hostile := strings.Repeat("z", 4096)
	if n := testing.AllocsPerRun(200, func() {
		ParseTraceHeader(valid)
		ParseTraceHeader(hostile)
	}); n != 0 {
		t.Fatalf("ParseTraceHeader allocates %.1f per run", n)
	}
}

// FuzzTraceHeaderDecode feeds hostile header values — oversized,
// truncated, bad hex, depth bombs — through the decoder. The contract:
// never panic, never allocate (the caller falls back to a fresh root
// trace on rejection), and anything accepted must re-encode to exactly
// the canonical form that parses back to the same context.
func FuzzTraceHeaderDecode(f *testing.F) {
	f.Add("")
	f.Add("0000000000000001-0000000000000002-01-00")
	f.Add(SpanContext{TraceID: ^uint64(0), SpanID: 1, Sampled: true, Depth: MaxTraceDepth}.String())
	f.Add(strings.Repeat("0", traceHeaderLen))
	f.Add(strings.Repeat("f", 1<<16))                // oversized
	f.Add("0000000000000001-0000000000000002-01-ff") // depth bomb
	f.Add("0000000000000001-0000000000000002-01")    // truncated
	f.Add("000000000000000g-0000000000000002-01-00") // bad hex
	f.Fuzz(func(t *testing.T, s string) {
		sc, ok := ParseTraceHeader(s)
		if !ok {
			if sc != (SpanContext{}) {
				t.Fatalf("rejected header leaked state: %+v", sc)
			}
			return
		}
		if sc.TraceID == 0 || sc.Depth > MaxTraceDepth {
			t.Fatalf("accepted invalid context %+v from %q", sc, s)
		}
		back, ok2 := ParseTraceHeader(sc.String())
		if !ok2 || back != sc {
			t.Fatalf("canonical re-encode broke: %+v -> %q -> %+v", sc, sc.String(), back)
		}
	})
}
