// Package httpapi exposes an S³ index over HTTP with a small JSON API, so
// the reference database can be queried as a service (the deployment mode
// of a monitoring installation where extraction happens near the capture
// hardware and the archive index is centralized).
//
// Endpoints:
//
//	GET  /healthz                    liveness plus shard/record counts
//	GET  /stats                      database and index facts
//	POST /search/statistical         {"fingerprint": [..], "alpha": 0.8, "sigma": 20}
//	POST /search/statistical/batch   {"fingerprints": [[..], ..], "alpha": 0.8, "sigma": 20}
//	POST /search/range               {"fingerprint": [..], "epsilon": 95}
//	POST /search/knn                 {"fingerprint": [..], "k": 10}
//
// Fingerprints are arrays of D integers in [0, 255]. Responses carry the
// matches (id, tc, x, y, dist) plus plan/search diagnostics. Non-POST
// requests to the search endpoints get 405.
//
// Searches run through a sharded query engine (core.Engine): every
// request is executed under its own context (client disconnects cancel
// the search) and the number of requests concurrently inside the engine
// is bounded by a semaphore, so a traffic burst queues instead of
// spawning unbounded concurrent scans.
package httpapi

import (
	"encoding/json"
	"fmt"
	"net/http"

	"s3cbcd/internal/core"
	"s3cbcd/internal/store"
)

// DefaultMaxInFlight bounds concurrently executing searches when
// Options.MaxInFlight is zero.
const DefaultMaxInFlight = 64

// Options tunes the server.
type Options struct {
	// Depth is the index partition depth p; 0 selects the heuristic.
	Depth int
	// Shards is the engine's keyspace shard count; 0 or 1 is monolithic.
	Shards int
	// Workers bounds the engine's concurrency; 0 selects GOMAXPROCS.
	Workers int
	// MaxInFlight bounds the number of requests concurrently executing
	// searches; 0 selects DefaultMaxInFlight, negative values disable the
	// bound.
	MaxInFlight int
}

// Server wires an index into an http.Handler.
type Server struct {
	eng *core.Engine
	mux *http.ServeMux
	sem chan struct{} // nil = unbounded
}

// New returns a ready handler over the given database.
func New(db *store.DB, opt Options) (*Server, error) {
	ix, err := core.NewIndex(db, opt.Depth)
	if err != nil {
		return nil, err
	}
	s := &Server{eng: core.NewEngine(ix, opt.Shards, opt.Workers), mux: http.NewServeMux()}
	if opt.MaxInFlight == 0 {
		opt.MaxInFlight = DefaultMaxInFlight
	}
	if opt.MaxInFlight > 0 {
		s.sem = make(chan struct{}, opt.MaxInFlight)
	}
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /stats", s.handleStats)
	s.mux.HandleFunc("POST /search/statistical", s.bounded(s.handleStat))
	s.mux.HandleFunc("POST /search/statistical/batch", s.bounded(s.handleStatBatch))
	s.mux.HandleFunc("POST /search/range", s.bounded(s.handleRange))
	s.mux.HandleFunc("POST /search/knn", s.bounded(s.handleKNN))
	return s, nil
}

// Engine returns the server's query engine.
func (s *Server) Engine() *core.Engine { return s.eng }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// bounded gates a handler on the in-flight semaphore. A request whose
// client goes away while queued is dropped without touching the engine.
func (s *Server) bounded(h http.HandlerFunc) http.HandlerFunc {
	if s.sem == nil {
		return h
	}
	return func(w http.ResponseWriter, r *http.Request) {
		select {
		case s.sem <- struct{}{}:
			defer func() { <-s.sem }()
		case <-r.Context().Done():
			httpError(w, http.StatusServiceUnavailable, "request canceled while queued")
			return
		}
		h(w, r)
	}
}

// matchJSON is the wire form of a search result.
type matchJSON struct {
	ID   uint32  `json:"id"`
	TC   uint32  `json:"tc"`
	X    uint16  `json:"x"`
	Y    uint16  `json:"y"`
	Dist float64 `json:"dist,omitempty"`
}

func toJSON(ms []core.Match) []matchJSON {
	out := make([]matchJSON, len(ms))
	for i, m := range ms {
		out[i] = matchJSON{ID: m.ID, TC: m.TC, X: m.X, Y: m.Y}
		if m.Dist >= 0 {
			out[i].Dist = m.Dist
		}
	}
	return out
}

// searchRequest is the common request body.
type searchRequest struct {
	Fingerprint  []int   `json:"fingerprint"`
	Fingerprints [][]int `json:"fingerprints"`
	Alpha        float64 `json:"alpha"`
	Sigma        float64 `json:"sigma"`
	Epsilon      float64 `json:"epsilon"`
	K            int     `json:"k"`
	MaxLeaves    int     `json:"maxLeaves"`
}

// fingerprint validates and converts one request fingerprint.
func (s *Server) fingerprint(raw []int) ([]byte, error) {
	dims := s.eng.Index().DB().Dims()
	if len(raw) != dims {
		return nil, fmt.Errorf("fingerprint has %d components, index needs %d", len(raw), dims)
	}
	fp := make([]byte, dims)
	for i, v := range raw {
		if v < 0 || v > 255 {
			return nil, fmt.Errorf("component %d = %d outside [0,255]", i, v)
		}
		fp[i] = byte(v)
	}
	return fp, nil
}

func decode(w http.ResponseWriter, r *http.Request) (*searchRequest, bool) {
	var req searchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "invalid JSON: %v", err)
		return nil, false
	}
	return &req, true
}

func httpError(w http.ResponseWriter, code int, format string, args ...interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

func reply(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	reply(w, map[string]interface{}{
		"status":  "ok",
		"shards":  s.eng.Shards(),
		"records": s.eng.Index().DB().Len(),
		// Cumulative partition-tree nodes visited by every plan this
		// engine has computed: the filtering-side work counter that the
		// frontier planner exists to keep small.
		"descentNodes": s.eng.DescentNodes(),
	})
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	ix := s.eng.Index()
	db := ix.DB()
	reply(w, map[string]interface{}{
		"records": db.Len(),
		"dims":    db.Dims(),
		"order":   db.Curve().Order(),
		"depth":   ix.Depth(),
		"shards":  s.eng.Shards(),
		"workers": s.eng.Workers(),
	})
}

// statQuery builds the statistical query from request parameters.
func (s *Server) statQuery(req *searchRequest) (core.StatQuery, error) {
	if req.Sigma <= 0 {
		return core.StatQuery{}, fmt.Errorf("sigma must be > 0")
	}
	return core.StatQuery{Alpha: req.Alpha,
		Model: core.IsoNormal{D: s.eng.Index().DB().Dims(), Sigma: req.Sigma}}, nil
}

func planJSON(plan core.Plan) map[string]interface{} {
	return map[string]interface{}{
		"blocks":       plan.Blocks,
		"mass":         plan.Mass,
		"threshold":    plan.Threshold,
		"filterIters":  plan.FilterIters,
		"descentNodes": plan.DescentNodes,
		"depth":        plan.Depth,
	}
}

func (s *Server) handleStat(w http.ResponseWriter, r *http.Request) {
	req, ok := decode(w, r)
	if !ok {
		return
	}
	fp, err := s.fingerprint(req.Fingerprint)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	sq, err := s.statQuery(req)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	matches, plan, err := s.eng.SearchStat(r.Context(), fp, sq)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	reply(w, map[string]interface{}{
		"matches": toJSON(matches),
		"plan":    planJSON(plan),
	})
}

func (s *Server) handleStatBatch(w http.ResponseWriter, r *http.Request) {
	req, ok := decode(w, r)
	if !ok {
		return
	}
	if len(req.Fingerprints) == 0 {
		httpError(w, http.StatusBadRequest, "fingerprints must be a non-empty array")
		return
	}
	queries := make([][]byte, len(req.Fingerprints))
	for i, raw := range req.Fingerprints {
		fp, err := s.fingerprint(raw)
		if err != nil {
			httpError(w, http.StatusBadRequest, "fingerprint %d: %v", i, err)
			return
		}
		queries[i] = fp
	}
	sq, err := s.statQuery(req)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	results, err := s.eng.SearchStatBatch(r.Context(), queries, sq)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	out := make([][]matchJSON, len(results))
	for i, ms := range results {
		out[i] = toJSON(ms)
	}
	reply(w, map[string]interface{}{"results": out})
}

func (s *Server) handleRange(w http.ResponseWriter, r *http.Request) {
	req, ok := decode(w, r)
	if !ok {
		return
	}
	fp, err := s.fingerprint(req.Fingerprint)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	matches, plan, err := s.eng.SearchRange(r.Context(), fp, req.Epsilon)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	reply(w, map[string]interface{}{
		"matches": toJSON(matches),
		"blocks":  plan.Blocks,
	})
}

func (s *Server) handleKNN(w http.ResponseWriter, r *http.Request) {
	req, ok := decode(w, r)
	if !ok {
		return
	}
	fp, err := s.fingerprint(req.Fingerprint)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	matches, stats, err := s.eng.SearchKNN(r.Context(), fp, req.K, req.MaxLeaves)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	reply(w, map[string]interface{}{
		"matches": toJSON(matches),
		"exact":   stats.Exact,
		"scanned": stats.Scanned,
	})
}
