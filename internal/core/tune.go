package core

import (
	"fmt"
	"time"
)

// DepthTiming is the response-time decomposition at one partition depth:
// T(p) = T_f(p) + T_r(p) of Section IV-A. Times are per-query averages.
type DepthTiming struct {
	Depth  int
	Filter time.Duration
	Refine time.Duration
	Total  time.Duration
	// Blocks and Scanned are per-query averages of selected blocks and
	// refined records.
	Blocks  float64
	Scanned float64
}

// SweepDepth measures the statistical-query response time of the index at
// each requested depth using the sample queries. The index's depth is
// restored afterwards.
func (ix *Index) SweepDepth(depths []int, samples [][]byte, sq StatQuery) ([]DepthTiming, error) {
	if len(samples) == 0 {
		return nil, fmt.Errorf("core: SweepDepth needs sample queries")
	}
	if err := sq.validate(ix.db.Dims()); err != nil {
		return nil, err
	}
	saved := ix.depth
	defer func() { ix.depth = saved }()

	out := make([]DepthTiming, 0, len(depths))
	for _, p := range depths {
		if p < 1 || p > ix.curve.IndexBits() {
			return nil, fmt.Errorf("core: sweep depth %d outside [1,%d]", p, ix.curve.IndexBits())
		}
		ix.depth = p
		var dt DepthTiming
		dt.Depth = p
		for _, q := range samples {
			t0 := time.Now()
			plan, err := ix.PlanStat(q, sq)
			if err != nil {
				return nil, err
			}
			t1 := time.Now()
			matches := ix.refineStat(plan)
			t2 := time.Now()
			dt.Filter += t1.Sub(t0)
			dt.Refine += t2.Sub(t1)
			dt.Blocks += float64(plan.Blocks)
			dt.Scanned += float64(len(matches))
		}
		n := time.Duration(len(samples))
		dt.Filter /= n
		dt.Refine /= n
		dt.Total = dt.Filter + dt.Refine
		dt.Blocks /= float64(len(samples))
		dt.Scanned /= float64(len(samples))
		out = append(out, dt)
	}
	return out, nil
}

// TuneDepth reproduces the paper's "p_min ... learned at the start of the
// retrieval stage": it sweeps the given depths (or a default ladder
// around the current depth when depths is nil) and sets the index to the
// depth with the smallest average total response time, returning the
// sweep for inspection.
func (ix *Index) TuneDepth(depths []int, samples [][]byte, sq StatQuery) ([]DepthTiming, error) {
	if depths == nil {
		maxP := ix.curve.IndexBits()
		for p := ix.depth - 6; p <= ix.depth+6; p += 2 {
			if p >= 1 && p <= maxP {
				depths = append(depths, p)
			}
		}
	}
	sweep, err := ix.SweepDepth(depths, samples, sq)
	if err != nil {
		return nil, err
	}
	best := sweep[0]
	for _, dt := range sweep[1:] {
		if dt.Total < best.Total {
			best = dt
		}
	}
	ix.SetDepth(best.Depth)
	return sweep, nil
}
