// Archive deduplication: the workload the paper's introduction motivates
// — inside a large TV archive, "several video clips can be duplicated 600
// times". This example indexes an archive in which some videos share
// re-broadcast material, then uses the CBCD detector to find which
// archive entries contain copies of which others.
//
// Run with: go run ./examples/archivededup
package main

import (
	"fmt"
	"log"

	s3 "s3cbcd"
)

func main() {
	log.SetFlags(0)
	const nVideos = 6

	// Build the archive: six videos, where videos 5 and 6 re-use a
	// segment of videos 1 and 2 respectively (a rerun inside other
	// programming), and the rest is original.
	videos := make([]*s3.Video, nVideos)
	for i := range videos {
		videos[i] = s3.GenerateVideo(int64(100+i), 240)
	}
	embed := func(dst, src *s3.Video, at, from, n int) {
		for k := 0; k < n; k++ {
			dst.Frames[at+k] = src.Frames[from+k].Clone()
		}
	}
	embed(videos[4], videos[0], 60, 30, 120) // video 5 reuses video 1
	embed(videos[5], videos[1], 20, 80, 100) // video 6 reuses video 2

	in := s3.NewVideoIndexer(s3.CBCDConfig{})
	for i, v := range videos {
		n := in.AddSequence(uint32(i+1), v)
		fmt.Printf("archived video %d: %d fingerprints\n", i+1, n)
	}
	det, err := in.Build()
	if err != nil {
		log.Fatal(err)
	}

	// Calibrate the decision threshold on clips known to be original.
	thr, err := s3.CalibrateThreshold(det, []*s3.Video{
		s3.GenerateVideo(900, 200), s3.GenerateVideo(901, 200),
	})
	if err != nil {
		log.Fatal(err)
	}
	// Archive entries share production statistics more than arbitrary
	// clean clips do, so give the calibrated threshold some headroom.
	det.SetVoteThreshold(thr + thr/2)
	fmt.Printf("vote threshold: %d\n\n", thr+thr/2)

	// Query every archive entry against the archive. Self-matches (same
	// id at offset 0) are expected; anything else is shared material.
	fmt.Println("duplication report:")
	for i, v := range videos {
		dets, err := det.DetectClip(v)
		if err != nil {
			log.Fatal(err)
		}
		for _, d := range dets {
			if d.ID == uint32(i+1) {
				continue // the entry matches itself, not a duplicate
			}
			fmt.Printf("  video %d contains material of video %d (offset %.0f frames, %d votes)\n",
				i+1, d.ID, d.Offset, d.Votes)
		}
	}
}
