package store

import (
	"fmt"

	"s3cbcd/internal/bitkey"
)

// Merge combines two curve-ordered databases into one, preserving the
// curve order with a linear merge. Both inputs must share the same curve
// geometry. It is how a static S³ archive grows: index the new material
// separately, then merge — the paper's system is rebuilt offline the same
// way, and merging sorted runs is far cheaper than re-sorting everything.
func Merge(a, b *DB) (*DB, error) {
	if a.curve.Dims() != b.curve.Dims() || a.curve.Order() != b.curve.Order() {
		return nil, fmt.Errorf("store: merging incompatible curves (D=%d,K=%d vs D=%d,K=%d)",
			a.curve.Dims(), a.curve.Order(), b.curve.Dims(), b.curve.Order())
	}
	dims := a.Dims()
	n := a.Len() + b.Len()
	out := &DB{
		curve: a.curve,
		keys:  make([]bitkey.Key, 0, n),
		fps:   make([]byte, 0, n*dims),
		ids:   make([]uint32, 0, n),
		tcs:   make([]uint32, 0, n),
		xs:    make([]uint16, 0, n),
		ys:    make([]uint16, 0, n),
	}
	take := func(src *DB, i int) {
		out.keys = append(out.keys, src.keys[i])
		out.fps = append(out.fps, src.FP(i)...)
		out.ids = append(out.ids, src.ids[i])
		out.tcs = append(out.tcs, src.tcs[i])
		out.xs = append(out.xs, src.xs[i])
		out.ys = append(out.ys, src.ys[i])
	}
	i, j := 0, 0
	for i < a.Len() && j < b.Len() {
		if a.keys[i].Cmp(b.keys[j]) <= 0 {
			take(a, i)
			i++
		} else {
			take(b, j)
			j++
		}
	}
	for ; i < a.Len(); i++ {
		take(a, i)
	}
	for ; j < b.Len(); j++ {
		take(b, j)
	}
	return out, nil
}

// Filter returns a new database containing only the records the predicate
// keeps (called with each record's identifier and time code). Curve order
// is preserved, so no re-sort is needed. This is the withdrawal path of a
// static archive: rebuild without the removed material.
func Filter(db *DB, keep func(id, tc uint32) bool) *DB {
	dims := db.Dims()
	out := &DB{curve: db.curve}
	for i := 0; i < db.Len(); i++ {
		if !keep(db.ids[i], db.tcs[i]) {
			continue
		}
		out.keys = append(out.keys, db.keys[i])
		out.fps = append(out.fps, db.fps[i*dims:(i+1)*dims]...)
		out.ids = append(out.ids, db.ids[i])
		out.tcs = append(out.tcs, db.tcs[i])
		out.xs = append(out.xs, db.xs[i])
		out.ys = append(out.ys, db.ys[i])
	}
	return out
}
