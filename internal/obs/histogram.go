package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync/atomic"
	"time"
)

// Histogram is a fixed-bucket histogram: bounds are chosen at
// construction, an observation is a binary search plus two atomic
// updates (no locks, no allocation), and quantiles are estimated from
// the bucket counts by linear interpolation. Rendered in Prometheus
// histogram form (_bucket/_sum/_count with cumulative le buckets).
type Histogram struct {
	family, labels, help string
	bounds               []float64 // ascending upper bounds; +Inf implicit
	counts               []atomic.Uint64
	sumBits              atomic.Uint64
}

// NewHistogram returns an unregistered histogram over the given upper
// bucket bounds, which must be sorted ascending. The +Inf overflow
// bucket is implicit. The bounds slice is copied.
func NewHistogram(name, help string, bounds []float64) *Histogram {
	if len(bounds) == 0 {
		panic("obs: histogram needs at least one bucket bound")
	}
	if !sort.Float64sAreSorted(bounds) {
		panic(fmt.Sprintf("obs: histogram %s bounds are not ascending", name))
	}
	family, labels := splitName(name)
	return &Histogram{
		family: family, labels: labels, help: help,
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// First bound >= v: the le="bound" bucket the sample belongs to.
	h.counts[sort.SearchFloat64s(h.bounds, v)].Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// ObserveSince records the seconds elapsed since t0 — the one-liner for
// latency instrumentation.
func (h *Histogram) ObserveSince(t0 time.Time) {
	if h != nil {
		h.Observe(time.Since(t0).Seconds())
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	var n uint64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Quantile estimates the q-quantile (q in [0, 1]) by linear
// interpolation within the bucket holding the target rank. Values in the
// overflow bucket are attributed to the largest finite bound (the
// estimate saturates there). Returns 0 for an empty histogram.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	counts := make([]uint64, len(h.counts))
	var total uint64
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
		total += counts[i]
	}
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(total)
	cum := 0.0
	for i, c := range counts {
		next := cum + float64(c)
		if next >= target && c > 0 {
			if i == len(h.bounds) {
				// Overflow bucket: no finite upper edge to interpolate to.
				return h.bounds[len(h.bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			hi := h.bounds[i]
			frac := (target - cum) / float64(c)
			if frac < 0 {
				frac = 0
			}
			return lo + (hi-lo)*frac
		}
		cum = next
	}
	return h.bounds[len(h.bounds)-1]
}

func (h *Histogram) desc() (string, string, string, string) {
	return h.family, h.labels, h.help, "histogram"
}

func (h *Histogram) write(w io.Writer) {
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i].Load()
		le := "+Inf"
		if i < len(h.bounds) {
			le = formatFloat(h.bounds[i])
		}
		fmt.Fprintf(w, "%s_bucket{%s} %d\n", h.family, labelsWith(h.labels, `le="`+le+`"`), cum)
	}
	fmt.Fprintf(w, "%s %s\n", seriesName(h.family+"_sum", h.labels), formatFloat(h.Sum()))
	fmt.Fprintf(w, "%s %d\n", seriesName(h.family+"_count", h.labels), cum)
}

// LatencyBuckets are the default histogram bounds for request and stage
// latencies, in seconds: 10µs to 10s, roughly 2.5x apart.
func LatencyBuckets() []float64 {
	return []float64{
		1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
		1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2,
		0.1, 0.25, 0.5, 1, 2.5, 5, 10,
	}
}

// SizeBuckets are the default histogram bounds for counts (blocks,
// records, candidates): powers of four from 1 to 1M.
func SizeBuckets() []float64 {
	return []float64{1, 4, 16, 64, 256, 1024, 4096, 16384, 65536, 262144, 1048576}
}
