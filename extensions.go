package s3

// Public API for the reproduction's extensions: the alternative
// distortion models and spatially extended voting the paper's conclusion
// proposes as future work, exact/approximate k-NN on the same structure,
// the VA-file sequential baseline, and index merging.

import (
	"s3cbcd/internal/core"
	"s3cbcd/internal/distortion"
	"s3cbcd/internal/store"
	"s3cbcd/internal/vafile"
)

// Alternative distortion models (all satisfy Model and keep the
// independence assumption the index requires).
type (
	// IsoLaplace is a heavy-tailed single-scale Laplace model.
	IsoLaplace = core.IsoLaplace
	// IsoStudentT is a scaled Student-t model with Nu degrees of freedom.
	IsoStudentT = core.IsoStudentT
	// MixtureNormal is a two-component core+outlier normal mixture.
	MixtureNormal = core.MixtureNormal
	// Empirical is a nonparametric kernel-smoothed CDF model.
	Empirical = core.Empirical
	// KNNStats reports the work of a k-NN search.
	KNNStats = core.KNNStats
	// VAFileStats reports the filtering effectiveness of a VA-file query.
	VAFileStats = vafile.Stats
)

// FitMixtureNormal fits the two-component mixture to pooled distortion
// samples (see CollectDistortionSamples) by EM.
func FitMixtureNormal(dims int, samples []float64) (MixtureNormal, error) {
	return core.FitMixtureNormal(dims, samples)
}

// FitEmpirical builds a nonparametric distortion model from pooled
// samples.
func FitEmpirical(dims int, samples []float64) (Empirical, error) {
	return core.FitEmpirical(dims, samples)
}

// CollectDistortionSamples measures a transformation on sample videos
// with a simulated perfect detector and returns every per-component
// distortion value, pooled — the input for FitMixtureNormal and
// FitEmpirical.
func CollectDistortionSamples(samples []*Video, tf Transform, cfg ExtractConfig) []float64 {
	return distortion.PooledDeltas(distortion.CollectPairs(samples, tf, cfg))
}

// KNNSearch returns the k nearest stored fingerprints by L2 distance,
// closest first. maxLeaves <= 0 gives the exact best-first search;
// maxLeaves > 0 stops early after refining that many leaf blocks (the
// approximate early-stopping variant). The paper argues k-NN is the wrong
// query type for copy detection (see cmd/s3bench -exp knn); it is exposed
// for other applications of the index.
func (x *Index) KNNSearch(q []byte, k, maxLeaves int) ([]Match, KNNStats, error) {
	return x.ix.SearchKNN(q, k, maxLeaves)
}

// KNNProbStats reports a probabilistic k-NN traversal.
type KNNProbStats = core.KNNProbStats

// KNNSearchProb is the probabilistically-controlled approximate k-NN of
// the paper's related work ([16], [17]): blocks are visited in decreasing
// model mass until the visited region carries >= confidence, so each true
// relevant neighbor is reported with at least that probability.
func (x *Index) KNNSearchProb(q []byte, k int, confidence float64, m Model) ([]Match, KNNProbStats, error) {
	return x.ix.SearchKNNProb(q, k, confidence, m)
}

// VAFile is the vector-approximation file of Weber & Blott, the improved
// sequential baseline of the paper's related work.
type VAFile struct {
	ix *vafile.Index
}

// NewVAFile builds a VA-file over the index's database with the given
// bits per dimension (1, 2, 4 or 8).
func NewVAFile(x *Index, bits int) (*VAFile, error) {
	ix, err := vafile.Build(x.db, bits)
	if err != nil {
		return nil, err
	}
	return &VAFile{ix: ix}, nil
}

// RangeSearch returns every record within L2 distance eps of q, scanning
// the approximation file and verifying surviving candidates.
func (v *VAFile) RangeSearch(q []byte, eps float64) ([]Match, VAFileStats, error) {
	return v.ix.RangeQuery(q, eps)
}

// MergeIndexes combines two indexes over the same geometry into one, with
// a linear merge of their curve-ordered records. depth <= 0 selects the
// default heuristic for the combined size. The merged index inherits a's
// engine layout (shard count and worker bound).
func MergeIndexes(a, b *Index, depth int) (*Index, error) {
	db, err := store.Merge(a.db, b.db)
	if err != nil {
		return nil, err
	}
	return newIndex(db, IndexOptions{Depth: depth, Shards: a.eng.Shards(), Workers: a.eng.Workers()})
}

// FilterIndex returns a new index containing only the records the
// predicate keeps — the withdrawal path for removing content from a
// static archive. depth <= 0 selects the default heuristic. The filtered
// index inherits x's engine layout.
func FilterIndex(x *Index, keep func(id, tc uint32) bool, depth int) (*Index, error) {
	db := store.Filter(x.db, keep)
	return newIndex(db, IndexOptions{Depth: depth, Shards: x.eng.Shards(), Workers: x.eng.Workers()})
}
