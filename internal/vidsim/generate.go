package vidsim

import (
	"fmt"
	"math"
	"math/rand"
)

// GenConfig parameterizes the procedural generator.
type GenConfig struct {
	W, H int   // frame size in pixels
	FPS  int   // nominal frame rate (time codes are frame indices)
	Seed int64 // generator seed; same seed, same video

	// MinShot and MaxShot bound the shot length in frames. Defaults: 20, 70.
	MinShot, MaxShot int
	// MaxObjects is the maximum number of moving objects per shot.
	// Default: 4.
	MaxObjects int
}

func (c *GenConfig) applyDefaults() {
	if c.FPS == 0 {
		c.FPS = 25
	}
	if c.MinShot == 0 {
		c.MinShot = 20
	}
	if c.MaxShot == 0 {
		c.MaxShot = 70
	}
	if c.MaxObjects == 0 {
		c.MaxObjects = 4
	}
}

// DefaultConfig is the frame geometry used across the reproduction's
// experiments: a reduced analogue of the paper's 352x288 MPEG1 frames.
func DefaultConfig(seed int64) GenConfig {
	return GenConfig{W: 96, H: 72, Seed: seed}
}

// object is a textured moving ellipse composited over the background.
type object struct {
	cx, cy   float64 // center
	vx, vy   float64 // velocity (px/frame)
	rx, ry   float64 // radii
	level    float64 // base intensity
	texSeed  uint64
	texScale float64
}

// shot holds the scene parameters that stay fixed between two cuts.
type shot struct {
	length   int
	bgSeed   uint64
	bgScale  float64 // noise period in pixels
	bgLevel  float64 // base brightness
	bgRange  float64 // noise amplitude
	panX     float64 // background pan velocity (px/frame)
	panY     float64
	lumDrift float64 // per-frame global luminance drift
	objects  []object
}

// Generate renders frames procedural frames. The output is fully
// determined by cfg.
func Generate(cfg GenConfig, frames int) *Sequence {
	cfg.applyDefaults()
	if cfg.W < 8 || cfg.H < 8 {
		panic(fmt.Sprintf("vidsim: frame %dx%d too small", cfg.W, cfg.H))
	}
	if frames < 0 {
		panic("vidsim: negative frame count")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	seq := &Sequence{FPS: cfg.FPS, Frames: make([]*Frame, 0, frames)}
	var cur shot
	remaining := 0
	t := 0 // frame index within shot
	for len(seq.Frames) < frames {
		if remaining == 0 {
			cur = newShot(cfg, rng)
			remaining = cur.length
			t = 0
		}
		seq.Frames = append(seq.Frames, renderFrame(cfg, &cur, t))
		t++
		remaining--
	}
	return seq
}

func newShot(cfg GenConfig, rng *rand.Rand) shot {
	s := shot{
		length:   cfg.MinShot + rng.Intn(cfg.MaxShot-cfg.MinShot+1),
		bgSeed:   rng.Uint64(),
		bgScale:  8 + rng.Float64()*24,
		bgLevel:  60 + rng.Float64()*120,
		bgRange:  40 + rng.Float64()*80,
		panX:     (rng.Float64() - 0.5) * 1.2,
		panY:     (rng.Float64() - 0.5) * 0.8,
		lumDrift: (rng.Float64() - 0.5) * 0.4,
	}
	n := 1 + rng.Intn(cfg.MaxObjects)
	for i := 0; i < n; i++ {
		o := object{
			cx:       rng.Float64() * float64(cfg.W),
			cy:       rng.Float64() * float64(cfg.H),
			vx:       (rng.Float64() - 0.5) * 3,
			vy:       (rng.Float64() - 0.5) * 3,
			rx:       4 + rng.Float64()*float64(cfg.W)/8,
			ry:       4 + rng.Float64()*float64(cfg.H)/8,
			level:    30 + rng.Float64()*200,
			texSeed:  rng.Uint64(),
			texScale: 3 + rng.Float64()*8,
		}
		s.objects = append(s.objects, o)
	}
	return s
}

func renderFrame(cfg GenConfig, s *shot, t int) *Frame {
	f := NewFrame(cfg.W, cfg.H)
	ft := float64(t)
	lum := s.lumDrift * ft
	for y := 0; y < cfg.H; y++ {
		for x := 0; x < cfg.W; x++ {
			bx := (float64(x) + s.panX*ft) / s.bgScale
			by := (float64(y) + s.panY*ft) / s.bgScale
			v := s.bgLevel + s.bgRange*(fbm(bx, by, 3, s.bgSeed)-0.5) + lum
			for i := range s.objects {
				o := &s.objects[i]
				ox := o.cx + o.vx*ft
				oy := o.cy + o.vy*ft
				dx := (float64(x) - ox) / o.rx
				dy := (float64(y) - oy) / o.ry
				if d2 := dx*dx + dy*dy; d2 <= 1 {
					tex := fbm(float64(x)/o.texScale, float64(y)/o.texScale, 2, o.texSeed)
					v = o.level + 60*(tex-0.5) + lum
					// Hard boundary: objects have crisp edges so they
					// produce corners; a thin darker rim strengthens them.
					if d2 > 0.85 {
						v *= 0.6
					}
				}
			}
			f.Pix[y*cfg.W+x] = clamp255(float32(v + 4*math.Sin(float64(x*7+y*13))))
		}
	}
	return f
}
