package obs

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestSpanTreeParenting(t *testing.T) {
	tr := NewTrace()
	tr.SetName("router /search/stat")
	group := tr.StartSpan("group", 0)
	tr.Annotate(group, "group", "0")
	att := tr.StartSpan("attempt", group)
	tr.Annotate(att, "backend", "http://b0")
	tr.EndSpan(att)
	tr.EndSpan(group)
	tr.StageSince("merge", time.Now())

	rep := tr.Report()
	if rep.TraceID == "" || len(rep.TraceID) != 16 {
		t.Fatalf("traceId %q", rep.TraceID)
	}
	if rep.Name != "router /search/stat" {
		t.Fatalf("name %q", rep.Name)
	}
	if len(rep.Spans) != 2 {
		t.Fatalf("want 2 root spans, got %+v", rep.Spans)
	}
	g := rep.Spans[0]
	if g.Name != "group" || g.Annotations["group"] != "0" {
		t.Fatalf("group span %+v", g)
	}
	if len(g.Children) != 1 || g.Children[0].Name != "attempt" || g.Children[0].Annotations["backend"] != "http://b0" {
		t.Fatalf("attempt span %+v", g.Children)
	}
	if rep.Spans[1].Name != "merge" {
		t.Fatalf("stage span %+v", rep.Spans[1])
	}
	// StageSince spans still render in the legacy flat list.
	if len(rep.Stages) != 1 || rep.Stages[0].Name != "merge" {
		t.Fatalf("stages %+v", rep.Stages)
	}
}

func TestSpanOpenAtReport(t *testing.T) {
	tr := NewTrace()
	id := tr.StartSpan("hung", 0)
	time.Sleep(time.Millisecond)
	rep := tr.Report()
	if len(rep.Spans) != 1 || rep.Spans[0].Micros <= 0 {
		t.Fatalf("open span should report elapsed time: %+v", rep.Spans)
	}
	tr.EndSpan(id)
	done := tr.Report().Spans[0].Micros
	time.Sleep(2 * time.Millisecond)
	if again := tr.Report().Spans[0].Micros; again != done {
		t.Fatalf("closed span duration moved: %d -> %d", done, again)
	}
}

func TestSpanCapDrops(t *testing.T) {
	tr := NewTrace()
	for i := 0; i < maxTraceSpans+10; i++ {
		tr.StageSince("s", time.Now())
	}
	rep := tr.Report()
	if len(rep.Stages) != maxTraceSpans {
		t.Fatalf("span cap not enforced: %d", len(rep.Stages))
	}
	if rep.DroppedSpans != 10 {
		t.Fatalf("dropped %d, want 10", rep.DroppedSpans)
	}
	// A dropped StartSpan returns 0; EndSpan/Annotate on it must not
	// misattribute to another span.
	id := tr.StartSpan("overflow", 0)
	if id != 0 {
		t.Fatalf("overflow span got id %d", id)
	}
	tr.EndSpan(id)
	tr.Annotate(id, "k", "v") // lands on the root, by design
}

func TestTraceError(t *testing.T) {
	tr := NewTrace()
	tr.SetError("first")
	tr.SetError("second")
	if rep := tr.Report(); rep.Error != "first" {
		t.Fatalf("error %q, want first recorded to win", rep.Error)
	}
}

func TestAttachRemoteGraftsAndAggregates(t *testing.T) {
	backend := NewTrace()
	backend.SetName("s3serve /search/stat")
	backend.StageSince("plan", time.Now())
	backend.StageSince("refine", time.Now())
	backend.AddDescentNodes(7)
	backend.AddBlocks(3)
	backend.AddCandidates(41)
	raw, err := json.Marshal(backend.Report())
	if err != nil {
		t.Fatal(err)
	}

	tr := NewTrace()
	att := tr.StartSpan("attempt", 0)
	time.Sleep(time.Millisecond)
	tr.EndSpan(att)
	if err := tr.AttachRemote(att, raw); err != nil {
		t.Fatal(err)
	}
	rep := tr.Report()
	if rep.DescentNodes != 7 || rep.Blocks != 3 || rep.Candidates != 41 {
		t.Fatalf("remote counters not aggregated: %+v", rep)
	}
	a := rep.Spans[0]
	if len(a.Children) != 1 {
		t.Fatalf("attempt has no grafted child: %+v", a)
	}
	sub := a.Children[0]
	if sub.Name != "s3serve /search/stat" || sub.Service != "remote" {
		t.Fatalf("graft %+v", sub)
	}
	if sub.StartMicros < a.StartMicros {
		t.Fatalf("graft not rebased onto attempt start: graft %d attempt %d", sub.StartMicros, a.StartMicros)
	}
	names := make([]string, 0, 2)
	for _, c := range sub.Children {
		names = append(names, c.Name)
	}
	if strings.Join(names, ",") != "plan,refine" {
		t.Fatalf("remote stage split lost: %v", names)
	}
}

func TestAttachRemoteMalformed(t *testing.T) {
	before := assemblyFailures.Load()
	tr := NewTrace()
	att := tr.StartSpan("attempt", 0)
	tr.EndSpan(att)
	if err := tr.AttachRemote(att, []byte(`{"totalMicros": "not a number"`)); err == nil {
		t.Fatal("malformed report must error")
	}
	if assemblyFailures.Load() != before+1 {
		t.Fatal("assembly failure not counted")
	}
	rep := tr.Report()
	if len(rep.Spans) != 1 || len(rep.Spans[0].Children) != 1 || rep.Spans[0].Children[0].Error == "" {
		t.Fatalf("torn graft should leave an error placeholder: %+v", rep.Spans)
	}
}

func TestNewTraceFromContinuesIdentity(t *testing.T) {
	sc := SpanContext{TraceID: 0xabcd, SpanID: 42, Sampled: true, Depth: 2}
	tr := NewTraceFrom(sc)
	if tr.TraceID() != 0xabcd {
		t.Fatalf("trace id %x", tr.TraceID())
	}
	next, ok := tr.Propagate(7)
	if !ok || next.TraceID != 0xabcd || next.SpanID != 7 || next.Depth != 3 || !next.Sampled {
		t.Fatalf("propagate %+v ok=%v", next, ok)
	}
	deep := NewTraceFrom(SpanContext{TraceID: 1, Depth: MaxTraceDepth})
	if _, ok := deep.Propagate(1); ok {
		t.Fatal("propagation past MaxTraceDepth must stop")
	}
	if NewTraceFrom(SpanContext{}).TraceID() == 0 {
		t.Fatal("zero context must fall back to a fresh root trace")
	}
}

func TestNilTraceSpanOps(t *testing.T) {
	var tr *Trace
	id := tr.StartSpan("x", 0)
	tr.EndSpan(id)
	tr.Annotate(id, "k", "v")
	tr.SpanSince("y", 0, time.Now())
	tr.SetName("n")
	tr.SetError("e")
	if err := tr.AttachRemote(0, []byte("junk")); err != nil {
		t.Fatal("nil trace AttachRemote must no-op")
	}
	if _, ok := tr.Propagate(0); ok {
		t.Fatal("nil trace must not propagate")
	}
	if tr.TraceID() != 0 {
		t.Fatal("nil trace id")
	}
}
