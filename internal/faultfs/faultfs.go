// Package faultfs provides a deterministic fault-injecting
// implementation of store.FS, the chaos half of the live index's
// crash-safety story: every failure mode the storage layer claims to
// survive — a transient ENOSPC, a failed fsync, a torn write, a power
// loss freezing the disk mid-operation — can be injected at an exact,
// reproducible point of the I/O stream and the recovery invariants
// checked against it.
//
// The fault model is the standard "synchronous, no reordering" one: an
// operation the inner filesystem reported complete is durable, a crash
// freezes all subsequent mutations, and the crashing operation itself may
// be applied partially (a torn write). Page-cache loss of unsynced data
// is not modelled beyond the DropSync action (a disk that acknowledges
// fsync without performing it); the store's commit protocol syncs every
// byte it relies on, so this model exercises exactly the guarantees the
// protocol claims.
//
// Faults are driven by an Injector callback consulted — under the
// filesystem's single mutex, so in a deterministic global order for a
// deterministic workload — once per intercepted operation, or by a
// seeded random schedule (NewSeeded) for soak-style chaos runs.
package faultfs

import (
	"errors"
	"fmt"
	"io"
	iofs "io/fs"
	"sync"

	"math/rand"

	"s3cbcd/internal/store"
)

// Op identifies one intercepted filesystem operation class.
type Op uint8

const (
	OpOpen Op = iota
	OpCreate
	OpRead
	OpReadAt
	OpWrite
	OpSync
	OpClose
	OpRename
	OpRemove
	OpReadDir
	OpSyncDir
)

var opNames = [...]string{
	OpOpen: "open", OpCreate: "create", OpRead: "read", OpReadAt: "readat",
	OpWrite: "write", OpSync: "sync", OpClose: "close", OpRename: "rename",
	OpRemove: "remove", OpReadDir: "readdir", OpSyncDir: "syncdir",
}

func (op Op) String() string {
	if int(op) < len(opNames) {
		return opNames[op]
	}
	return fmt.Sprintf("op(%d)", uint8(op))
}

// Mutating reports whether the operation changes durable state. These are
// the operations a crash point freezes and the crash-harness iterates
// over.
func (op Op) Mutating() bool {
	switch op {
	case OpCreate, OpWrite, OpSync, OpRename, OpRemove, OpSyncDir:
		return true
	}
	return false
}

// Action is an injector's verdict on one operation.
type Action uint8

const (
	// Pass lets the operation through to the inner filesystem.
	Pass Action = iota
	// Fail makes the operation return ErrInjected with no side effect.
	Fail
	// ShortWrite (writes only) applies a prefix of the buffer to the
	// inner file, then returns ErrInjected — a torn write. Non-write
	// operations treat it as Fail.
	ShortWrite
	// DropSync (sync and syncdir only) reports success without syncing —
	// a disk that lies about fsync. Other operations treat it as Pass.
	DropSync
	// Crash applies Fail (or a torn write, for writes) to this operation
	// and freezes the filesystem: every later mutating operation returns
	// ErrCrashed. Reads keep working — the dying process may still serve
	// queries from what is on disk.
	Crash
)

// ErrInjected is the error returned by operations an Injector fails.
var ErrInjected = errors.New("faultfs: injected fault")

// ErrCrashed is returned by every mutating operation after a Crash point.
var ErrCrashed = errors.New("faultfs: filesystem frozen by simulated crash")

// Injector decides the fate of one operation. seq is the global sequence
// number of intercepted operations (reads included), starting at 0. The
// callback runs under the filesystem's mutex: invocations are totally
// ordered, and it must not call back into the filesystem.
type Injector func(op Op, path string, seq int) Action

// FS is a fault-injecting store.FS wrapping an inner filesystem
// (typically store.OSFS over a test directory). It is safe for concurrent
// use; all bookkeeping is serialized by one mutex.
type FS struct {
	inner  store.FS
	mu     sync.Mutex
	inject Injector
	seq    int
	frozen bool

	opens, closes int
	injected      int
}

// New wraps inner with the given injector. A nil injector passes
// everything through (pure accounting mode).
func New(inner store.FS, inject Injector) *FS {
	return &FS{inner: inner, inject: inject}
}

// NewSeeded wraps inner with a reproducible random injector: each
// mutating operation independently fails, tears or drops its sync with
// probability rate. Reads are never failed — seeded chaos targets the
// write path, whose guarantees are the recoverable ones.
func NewSeeded(inner store.FS, seed int64, rate float64) *FS {
	rng := rand.New(rand.NewSource(seed))
	return New(inner, func(op Op, _ string, _ int) Action {
		if !op.Mutating() || rng.Float64() >= rate {
			return Pass
		}
		switch {
		case op == OpWrite && rng.Intn(2) == 0:
			return ShortWrite
		case (op == OpSync || op == OpSyncDir) && rng.Intn(2) == 0:
			return DropSync
		default:
			return Fail
		}
	})
}

// NewSeededReads wraps inner with a reproducible random injector for the
// READ side: each Read/ReadAt independently fails or comes up short with
// probability rate; every other operation passes. This is the chaos mode
// of the cold serving path (store.ColdFile), whose guarantee is that a
// failed block read surfaces as a query error — never a torn result, a
// cached failure or a leaked descriptor.
func NewSeededReads(inner store.FS, seed int64, rate float64) *FS {
	rng := rand.New(rand.NewSource(seed))
	return New(inner, func(op Op, _ string, _ int) Action {
		if (op != OpRead && op != OpReadAt) || rng.Float64() >= rate {
			return Pass
		}
		if rng.Intn(2) == 0 {
			return ShortWrite // short read: half the buffer, then io.EOF
		}
		return Fail
	})
}

// decide consults the injector for one operation and applies the freeze.
func (f *FS) decide(op Op, path string) Action {
	f.mu.Lock()
	defer f.mu.Unlock()
	seq := f.seq
	f.seq++
	if f.frozen && op.Mutating() {
		return frozenAction
	}
	act := Pass
	if f.inject != nil {
		act = f.inject(op, path, seq)
	}
	if act == Crash {
		f.frozen = true
	}
	switch act {
	case Fail, ShortWrite, Crash:
		f.injected++
	case DropSync:
		if op == OpSync || op == OpSyncDir {
			f.injected++
		}
	}
	return act
}

// frozenAction is a sentinel distinct from Crash so the frozen error is
// ErrCrashed rather than ErrInjected.
const frozenAction Action = 255

// errFor maps a non-Pass action to the error the operation returns.
func errFor(act Action) error {
	if act == frozenAction {
		return ErrCrashed
	}
	return ErrInjected
}

// Crashed reports whether a Crash point has frozen the filesystem.
func (f *FS) Crashed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.frozen
}

// Ops returns the number of operations intercepted so far.
func (f *FS) Ops() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.seq
}

// Injected returns the number of faults injected so far.
func (f *FS) Injected() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.injected
}

// OpenHandles returns opens minus closes — the live descriptor balance,
// for fd-leak checks.
func (f *FS) OpenHandles() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.opens - f.closes
}

func (f *FS) Open(path string) (store.Handle, error) {
	switch act := f.decide(OpOpen, path); act {
	case Pass, DropSync:
	default:
		return nil, fmt.Errorf("open %s: %w", path, errFor(act))
	}
	h, err := f.inner.Open(path)
	if err != nil {
		return nil, err
	}
	f.mu.Lock()
	f.opens++
	f.mu.Unlock()
	return &handle{fs: f, path: path, inner: h}, nil
}

func (f *FS) Create(path string) (store.Handle, error) {
	switch act := f.decide(OpCreate, path); act {
	case Pass, DropSync:
	default:
		return nil, fmt.Errorf("create %s: %w", path, errFor(act))
	}
	h, err := f.inner.Create(path)
	if err != nil {
		return nil, err
	}
	f.mu.Lock()
	f.opens++
	f.mu.Unlock()
	return &handle{fs: f, path: path, inner: h}, nil
}

func (f *FS) Rename(oldPath, newPath string) error {
	switch act := f.decide(OpRename, oldPath); act {
	case Pass, DropSync:
	default:
		return fmt.Errorf("rename %s: %w", oldPath, errFor(act))
	}
	return f.inner.Rename(oldPath, newPath)
}

func (f *FS) Remove(path string) error {
	switch act := f.decide(OpRemove, path); act {
	case Pass, DropSync:
	default:
		return fmt.Errorf("remove %s: %w", path, errFor(act))
	}
	return f.inner.Remove(path)
}

func (f *FS) ReadDir(dir string) ([]iofs.DirEntry, error) {
	switch act := f.decide(OpReadDir, dir); act {
	case Pass, DropSync:
	default:
		return nil, fmt.Errorf("readdir %s: %w", dir, errFor(act))
	}
	return f.inner.ReadDir(dir)
}

func (f *FS) SyncDir(dir string) error {
	switch act := f.decide(OpSyncDir, dir); act {
	case Pass:
	case DropSync:
		return nil
	default:
		return fmt.Errorf("syncdir %s: %w", dir, errFor(act))
	}
	return f.inner.SyncDir(dir)
}

// handle wraps one open file, consulting the injector per I/O call.
type handle struct {
	fs    *FS
	path  string
	inner store.Handle
}

func (h *handle) Read(p []byte) (int, error) {
	switch act := h.fs.decide(OpRead, h.path); act {
	case Pass, DropSync:
	case ShortWrite:
		// A short *read*: deliver half the requested bytes then report
		// EOF, simulating a file shorter than its metadata promises.
		n, err := h.inner.Read(p[:len(p)/2])
		if err != nil {
			return n, err
		}
		return n, io.EOF
	default:
		return 0, fmt.Errorf("read %s: %w", h.path, errFor(act))
	}
	return h.inner.Read(p)
}

func (h *handle) ReadAt(p []byte, off int64) (int, error) {
	switch act := h.fs.decide(OpReadAt, h.path); act {
	case Pass, DropSync:
	case ShortWrite:
		n, err := h.inner.ReadAt(p[:len(p)/2], off)
		if err != nil {
			return n, err
		}
		return n, io.EOF
	default:
		return 0, fmt.Errorf("readat %s: %w", h.path, errFor(act))
	}
	return h.inner.ReadAt(p, off)
}

func (h *handle) Write(p []byte) (int, error) {
	switch act := h.fs.decide(OpWrite, h.path); act {
	case Pass, DropSync:
	case ShortWrite, Crash:
		// Torn write: a prefix reaches the inner file, the rest is lost.
		n, _ := h.inner.Write(p[:(len(p)+1)/2])
		return n, fmt.Errorf("write %s: %w", h.path, ErrInjected)
	default:
		return 0, fmt.Errorf("write %s: %w", h.path, errFor(act))
	}
	return h.inner.Write(p)
}

func (h *handle) Sync() error {
	switch act := h.fs.decide(OpSync, h.path); act {
	case Pass:
	case DropSync:
		return nil
	default:
		return fmt.Errorf("sync %s: %w", h.path, errFor(act))
	}
	return h.inner.Sync()
}

func (h *handle) Close() error {
	h.fs.mu.Lock()
	h.fs.closes++
	h.fs.mu.Unlock()
	// Close is never failed: error paths must always be able to release
	// descriptors, and failing Close would make leak accounting ambiguous.
	return h.inner.Close()
}
