package store_test

// Read-fault coverage of the sketch/codec cold paths introduced with the
// format-4 sections: the lean area, the packed-code area and the
// single-record exact fallback reads are all served by preads that can
// fail mid-query. The guarantee is the same one the exact block path
// carries — a faulted read surfaces as an error, never a torn or wrong
// result, and never poisons the cache for the retry.

import (
	"math"
	"math/rand"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"

	"s3cbcd/internal/bitkey"
	"s3cbcd/internal/faultfs"
	"s3cbcd/internal/hilbert"
	"s3cbcd/internal/store"
)

// coldFaultFile writes a v4 (sketch + codec) file through a healthy
// filesystem and returns its path with the source DB.
func coldFaultFile(t *testing.T, seed int64, n int) (string, *store.DB) {
	t.Helper()
	curve := hilbert.MustNew(6, 4)
	r := rand.New(rand.NewSource(seed))
	recs := make([]store.Record, n)
	for i := range recs {
		fp := make([]byte, curve.Dims())
		for j := range fp {
			fp[j] = byte(r.Intn(1 << curve.Order()))
		}
		recs[i] = store.Record{FP: fp, ID: uint32(r.Intn(40)), TC: uint32(r.Intn(9000)),
			X: uint16(r.Intn(720)), Y: uint16(r.Intn(576))}
	}
	db, err := store.Build(curve, recs)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "v4.s3db")
	if err := db.WriteFileOpts(path, store.WriteOptions{
		SectionBits: 6, Sketch: true, Codec: true,
	}); err != nil {
		t.Fatal(err)
	}
	return path, db
}

func faultRandIntervals(r *rand.Rand, curve *hilbert.Curve, n int) []hilbert.Interval {
	max := uint64(1) << uint(curve.IndexBits())
	ivs := make([]hilbert.Interval, 0, n)
	for i := 0; i < n; i++ {
		a, b := r.Uint64()%max, r.Uint64()%(max+1)
		if a > b {
			a, b = b, a
		}
		if a == b {
			b++
		}
		ivs = append(ivs, hilbert.Interval{Start: bitkey.FromUint64(a), End: bitkey.FromUint64(b)})
	}
	for i := 1; i < len(ivs); i++ {
		for j := i; j > 0 && ivs[j].Start.Less(ivs[j-1].Start); j-- {
			ivs[j], ivs[j-1] = ivs[j-1], ivs[j]
		}
	}
	return hilbert.MergeIntervals(ivs)
}

func faultDistSq(qf []float64, fp []byte) float64 {
	s := 0.0
	for j, q := range qf {
		d := q - float64(fp[j])
		s += d * d
	}
	return s
}

// TestColdReadFaultsLeanAndFilteredPaths runs the lean and
// quantize-filtered visit paths under a gated seeded read injector
// (mirroring faultfs.NewSeededReads, gated healthy for the open): every
// call either errors or answers exactly what the in-memory DB answers.
// The per-survivor fallback reads — uncached preads into the exact area
// — are inside the blast radius, which is the point: a fault there must
// abort the query, not drop one survivor.
func TestColdReadFaultsLeanAndFilteredPaths(t *testing.T) {
	path, db := coldFaultFile(t, 81, 400)
	var (
		chaos   atomic.Bool
		chaosMu sync.Mutex
		rng     = rand.New(rand.NewSource(82))
	)
	fs := faultfs.New(store.OSFS, func(op faultfs.Op, _ string, _ int) faultfs.Action {
		if !chaos.Load() || (op != faultfs.OpRead && op != faultfs.OpReadAt) {
			return faultfs.Pass
		}
		chaosMu.Lock()
		defer chaosMu.Unlock()
		if rng.Float64() >= 0.3 {
			return faultfs.Pass
		}
		if rng.Intn(2) == 0 {
			return faultfs.ShortWrite
		}
		return faultfs.Fail
	})
	// Roomy cache: once a block survives a load it stays, so later rounds
	// exercise the mix of cached blocks and always-uncached fallback
	// preads rather than failing every time on reloads.
	ctr := store.NewColdCounters()
	cf, err := store.OpenColdOptsFS(fs, path, store.ColdOptions{
		Cache: store.NewBlockCache(1 << 20), BlockRecords: 8,
		Sketch: true, Codec: true, Counters: ctr,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cf.Close()
	chaos.Store(true)
	defer chaos.Store(false)

	r := rand.New(rand.NewSource(83))
	okLean, okFilt, failed := 0, 0, 0
	for i := 0; i < 120; i++ {
		ivs := faultRandIntervals(r, db.Curve(), 1+r.Intn(4))
		if i%2 == 0 {
			var got, want []uint64
			err := cf.VisitIntervalsLean(ivs, func(rv store.RecordView) bool {
				got = append(got, uint64(rv.ID)<<32|uint64(rv.TC))
				return true
			})
			if err != nil {
				failed++
				continue
			}
			okLean++
			_ = db.VisitIntervals(ivs, func(rv store.RecordView) bool {
				want = append(want, uint64(rv.ID)<<32|uint64(rv.TC))
				return true
			})
			if len(got) != len(want) {
				t.Fatalf("round %d: lean visit survived chaos with %d records, want %d", i, len(got), len(want))
			}
			for j := range want {
				if got[j] != want[j] {
					t.Fatalf("round %d: lean record %d differs under chaos", i, j)
				}
			}
			continue
		}
		qf := make([]float64, db.Dims())
		for j := range qf {
			qf[j] = r.Float64() * 16
		}
		boundSq := 4 + r.Float64()*100
		within := map[int]string{}
		_ = db.VisitIntervals(ivs, func(rv store.RecordView) bool {
			if faultDistSq(qf, rv.FP) <= boundSq {
				within[rv.Pos] = string(rv.FP)
			}
			return true
		})
		seen := map[int]bool{}
		err := cf.VisitIntervalsFiltered(ivs, qf, boundSq, func(rv store.RecordView) bool {
			seen[rv.Pos] = true
			if fp, ok := within[rv.Pos]; ok && string(rv.FP) != fp {
				t.Fatalf("round %d: filtered record %d carries wrong bytes under chaos", i, rv.Pos)
			}
			return true
		})
		if err != nil {
			failed++
			continue
		}
		okFilt++
		for pos := range within {
			if !seen[pos] {
				t.Fatalf("round %d: filtered visit survived chaos but dropped in-radius record %d", i, pos)
			}
		}
	}
	if failed == 0 {
		t.Fatal("30% read-fault rate never failed a lean/filtered visit — the injector is not wired")
	}
	if okLean == 0 || okFilt == 0 {
		t.Fatalf("no visit of some kind ever succeeded under chaos (lean %d, filtered %d)", okLean, okFilt)
	}

	// Heal: with chaos off, both paths answer exactly and the cache holds
	// no poisoned entry.
	chaos.Store(false)
	ivs := faultRandIntervals(r, db.Curve(), 3)
	n, wantN := 0, 0
	if err := cf.VisitIntervalsLean(ivs, func(store.RecordView) bool { n++; return true }); err != nil {
		t.Fatalf("lean visit after chaos cleared: %v", err)
	}
	_ = db.VisitIntervals(ivs, func(store.RecordView) bool { wantN++; return true })
	if n != wantN {
		t.Fatalf("healed lean visit saw %d records, want %d", n, wantN)
	}
	qf := make([]float64, db.Dims())
	if err := cf.VisitIntervalsFiltered(ivs, qf, math.Inf(1), func(store.RecordView) bool { return true }); err != nil {
		t.Fatalf("filtered visit after chaos cleared: %v", err)
	}
	if err := cf.Close(); err != nil {
		t.Fatal(err)
	}
	if lh := fs.OpenHandles(); lh != 0 {
		t.Fatalf("closed cold file leaked %d descriptors", lh)
	}
}

// TestColdReadFaultsSeededOpenV4: the ungated NewSeededReads constructor
// against a v4 file — at rate 1 the open itself (which probes the
// sketch, codec, lean and code sections) must fail without leaking; at
// rate 0 everything works including the filtered path.
func TestColdReadFaultsSeededOpenV4(t *testing.T) {
	path, db := coldFaultFile(t, 91, 150)
	always := faultfs.NewSeededReads(store.OSFS, 1, 1.0)
	if cf, err := store.OpenColdOptsFS(always, path, store.ColdOptions{Sketch: true, Codec: true}); err == nil {
		cf.Close()
		t.Fatal("cold open of a v4 file with every read faulted succeeded")
	}
	if lh := always.OpenHandles(); lh != 0 {
		t.Fatalf("failed cold open leaked %d descriptors", lh)
	}

	never := faultfs.NewSeededReads(store.OSFS, 1, 0)
	cf, err := store.OpenColdOptsFS(never, path, store.ColdOptions{Sketch: true, Codec: true})
	if err != nil {
		t.Fatal(err)
	}
	defer cf.Close()
	full := hilbert.Interval{Start: bitkey.Key{},
		End: bitkey.FromUint64(1).Shl(uint(db.Curve().IndexBits()))}
	n := 0
	qf := make([]float64, db.Dims())
	if err := cf.VisitIntervalsFiltered([]hilbert.Interval{full}, qf, math.Inf(1),
		func(store.RecordView) bool { n++; return true }); err != nil {
		t.Fatal(err)
	}
	if n != db.Len() {
		t.Fatalf("rate-0 filtered full scan visited %d of %d", n, db.Len())
	}
}
