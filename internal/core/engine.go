package core

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"s3cbcd/internal/obs"
	"s3cbcd/internal/store"
)

// Engine executes query plans concurrently over a sharded keyspace. The
// split the paper's structure invites is planning vs refinement: a
// statistical or geometric plan depends only on the global curve, never on
// the record data, so it is computed once per query, and its merged curve
// intervals are then intersected with the shards' key ranges and refined
// independently — the same partition-by-curve-interval idea the
// pseudo-disk strategy (Section IV-B) applies sequentially, here applied
// across cores. Because shard boundaries are snapped to stored keys
// (store.ShardRange), the per-shard pieces of a plan partition exactly the
// records the unsharded scan would visit, so results concatenated in shard
// order are byte-identical, including order, to the single-threaded path.
//
// Two axes of parallelism compose without oversubscription: a single
// query's refinement fans out across shards, and batch searches fan out
// across queries, both drawing on the same bounded worker count with
// per-worker reusable query contexts (scratch buffers plus mass cache) so
// the hot path allocates almost nothing per query.
//
// An Engine is safe for concurrent use.
type Engine struct {
	ix      *Index
	shards  []store.ShardRange
	workers int
	qctxs   sync.Pool // *queryContext
	bufs    sync.Pool // *[]Match
	// met instruments every query: the plan/refine cost split, plan
	// selectivity, and cumulative partition-tree descent work. Always
	// updated (a few atomics per query); exported via RegisterMetrics.
	met engineMetrics
	// cache, when enabled, memoizes statistical plans keyed on (query,
	// α, model, tuning); nil when disabled. The database is static, so
	// the cache generation is constant — depth changes are covered by
	// the tuning component of the key.
	cache *planCache
	// tuner, when enabled, adapts the threshold-search tuning (and,
	// if allowed, the depth) from observed query costs; nil when
	// disabled.
	tuner *autoTuner
}

// EngineOptions configures NewEngineOpts; the zero value reproduces
// NewEngine(ix, 0, 0).
type EngineOptions struct {
	// Shards and Workers are NewEngine's parameters.
	Shards, Workers int
	// PlanCache enables the bounded statistical-plan cache (see
	// plancache.go); answers are byte-identical with it on or off.
	PlanCache bool
	// PlanCacheEntries bounds the cache; 0 selects
	// DefaultPlanCacheEntries.
	PlanCacheEntries int
	// AutoTune enables online threshold-search tuning.
	AutoTune AutoTuneOptions
}

// NewEngine builds an engine over ix with nShards key-range shards and at
// most workers concurrent goroutines per call. nShards <= 0 or 1 selects
// the degenerate single-shard layout (still valid, just sequential);
// workers <= 0 selects GOMAXPROCS. workers == 1 executes everything on
// the calling goroutine, which is the seed's single-threaded behavior.
func NewEngine(ix *Index, nShards, workers int) *Engine {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if nShards <= 0 {
		nShards = 1
	}
	e := &Engine{ix: ix, shards: ix.db.Shards(nShards), workers: workers, met: newEngineMetrics()}
	e.qctxs.New = func() any {
		return &queryContext{
			qf: make([]float64, ix.db.Dims()),
			mc: newMassCache(ix.db.Dims(), ix.curve.SideLen()),
			fs: newFrontierState(ix.curve),
		}
	}
	e.bufs.New = func() any {
		b := make([]Match, 0, 256)
		return &b
	}
	return e
}

// NewEngineShards is NewEngine with an explicit shard layout, e.g. one
// loaded from a file's shard manifest. The ranges must partition the
// database (store.DB.ShardsAt validates that).
func NewEngineShards(ix *Index, shards []store.ShardRange, workers int) *Engine {
	e := NewEngine(ix, 1, workers)
	if len(shards) > 0 {
		e.shards = shards
	}
	return e
}

// NewEngineOpts is NewEngine with the plan cache and auto-tuner knobs.
func NewEngineOpts(ix *Index, opt EngineOptions) *Engine {
	e := NewEngine(ix, opt.Shards, opt.Workers)
	if opt.PlanCache {
		e.EnablePlanCache(opt.PlanCacheEntries)
	}
	if opt.AutoTune.Enabled {
		e.EnableAutoTune(opt.AutoTune)
	}
	return e
}

// EnablePlanCache attaches a plan cache bounded to entries completed
// plans (<= 0 selects DefaultPlanCacheEntries), bucketing keys with a
// quantizer fitted to the database's own value distribution. Not safe
// to call concurrently with queries: enable before serving.
func (e *Engine) EnablePlanCache(entries int) {
	qz, err := store.FitQuantizer(e.ix.db, store.DefaultCodecBits)
	if err != nil || e.ix.db.Len() == 0 {
		// An unfittable or empty database gets evenly spaced cells; only
		// hash bucketing quality is at stake, never correctness.
		qz, _ = store.UniformQuantizer(e.ix.db.Dims(), store.DefaultCodecBits)
	}
	e.cache = newPlanCache(qz, entries)
}

// EnableAutoTune attaches the online tuner, seeded at the engine's
// current static parameters, with depth confined to the curve's valid
// range when opt.TuneDepth is set. Not safe to call concurrently with
// queries: enable before serving.
func (e *Engine) EnableAutoTune(opt AutoTuneOptions) {
	opt.Enabled = true
	e.tuner = newAutoTuner(opt, e.ix.defaultTuning(), 1, e.ix.curve.IndexBits())
}

// tuning resolves the parameters the next plan runs at: the tuner's
// published values when enabled, the static defaults otherwise.
func (e *Engine) tuning() tuning {
	if e.tuner != nil {
		return *e.tuner.current()
	}
	return e.ix.defaultTuning()
}

// PlanCacheStats reports the plan cache; false when disabled.
func (e *Engine) PlanCacheStats() (PlanCacheStats, bool) {
	if e.cache == nil {
		return PlanCacheStats{}, false
	}
	return e.cache.statsSnapshot(), true
}

// AutoTuneStats reports the online tuner; false when disabled.
func (e *Engine) AutoTuneStats() (AutoTuneStats, bool) {
	if e.tuner == nil {
		return AutoTuneStats{}, false
	}
	return e.tuner.statsSnapshot(), true
}

// Index returns the wrapped index.
func (e *Engine) Index() *Index { return e.ix }

// Shards returns the number of keyspace shards.
func (e *Engine) Shards() int { return len(e.shards) }

// Workers returns the engine's concurrency bound.
func (e *Engine) Workers() int { return e.workers }

// queryContext is the per-worker reusable scratch state of one in-flight
// query: the widened query point, the per-dimension mass cache, and the
// frontier planner's leaf/frontier buffers. All of it is reset, not
// reallocated, between queries, keeping batch planning allocation-free.
type queryContext struct {
	qf []float64
	mc *massCache
	fs *frontierState
}

// setQuery validates q and widens it into the context's float buffer.
func (qc *queryContext) setQuery(q []byte) error {
	if len(q) != len(qc.qf) {
		return fmt.Errorf("core: query has %d components, index has %d", len(q), len(qc.qf))
	}
	for i, b := range q {
		qc.qf[i] = float64(b)
	}
	return nil
}

func (e *Engine) getCtx() *queryContext   { return e.qctxs.Get().(*queryContext) }
func (e *Engine) putCtx(qc *queryContext) { e.qctxs.Put(qc) }

// planStat computes the statistical plan for q using the context's
// scratch, consulting the plan cache when one is attached. sq must
// already be validated. On a cache hit the engine's plan-work metrics
// are untouched (no plan was computed) and the returned Intervals are
// the cache's shared immutable slice.
func (e *Engine) planStat(ctx context.Context, qc *queryContext, q []byte, sq StatQuery) (Plan, error) {
	if err := qc.setQuery(q); err != nil {
		return Plan{}, err
	}
	tn := e.tuning()
	if pc := e.cache; pc != nil {
		if planCacheBypassed(ctx) {
			pc.noteBypass()
		} else if mkey, keyable := modelPlanKey(sq.Model); keyable {
			// The database is static, so the generation component is
			// constant; tn covers depth changes.
			plan, ok := pc.plan(ctx, q, sq.Alpha, mkey, 0, tn, func() Plan {
				t0 := time.Now()
				qc.mc.reset()
				p := e.ix.planStatFrontierTuned(qc.qf, sq, qc.mc, qc.fs, tn)
				e.notePlan(ctx, p, t0)
				return p
			})
			if ok {
				return plan, nil
			}
			// ctx canceled while waiting on another caller's computation:
			// fall through and plan locally; the ctx error surfaces in
			// refinement.
		} else {
			pc.noteBypass()
		}
	}
	t0 := time.Now()
	qc.mc.reset()
	plan := e.ix.planStatFrontierTuned(qc.qf, sq, qc.mc, qc.fs, tn)
	e.notePlan(ctx, plan, t0)
	return plan, nil
}

// PlanStat computes the filtering-step plan for q without refining it,
// through the engine's pooled per-worker scratch — the statistical-query
// hot path up to (but excluding) the record scan. The returned plan's
// Intervals alias pooled buffers reused by later queries (the same
// contract as the plan SearchStat returns); copy them to retain. With
// tracing disabled this path allocates nothing once the pool is warm
// (guarded by the alloc test next to bench_plan_test.go).
func (e *Engine) PlanStat(ctx context.Context, q []byte, sq StatQuery) (Plan, error) {
	if err := sq.validate(e.ix.db.Dims()); err != nil {
		return Plan{}, err
	}
	qc := e.getCtx()
	defer e.putCtx(qc)
	qc.fs.alias = true
	plan, err := e.planStat(ctx, qc, q, sq)
	qc.fs.alias = false
	return plan, err
}

// notePlan records one computed plan into the engine metrics and, when
// the query is traced, the trace's work counters.
func (e *Engine) notePlan(ctx context.Context, plan Plan, t0 time.Time) {
	e.met.plans.Inc()
	e.met.planSeconds.ObserveSince(t0)
	e.met.planBlocks.Observe(float64(plan.Blocks))
	e.met.descentNodes.Add(int64(plan.DescentNodes))
	if tr := obs.FromContext(ctx); tr != nil {
		tr.AddDescentNodes(int64(plan.DescentNodes))
		tr.AddBlocks(int64(plan.Blocks))
	}
}

// DescentNodes returns the cumulative number of partition-tree nodes
// visited by every plan this engine has computed.
func (e *Engine) DescentNodes() int64 { return e.met.descentNodes.Value() }

// piece is the record range [lo, hi) a plan interval maps to, plus the
// offset of its first match in the final result slice (statistical
// refinement knows result sizes up front, so shards write into disjoint
// subranges of one pre-sized slice and no merge step is needed).
type piece struct {
	lo, hi, off int
}

// planPieces resolves the plan's intervals to record ranges with one
// binary search per interval — the same searches the unsharded path
// performs — and returns them with prefix offsets plus the total count.
func (e *Engine) planPieces(plan Plan) ([]piece, int) {
	db := e.ix.db
	pieces := make([]piece, 0, len(plan.Intervals))
	total := 0
	for _, iv := range plan.Intervals {
		lo, hi := db.FindInterval(iv)
		if lo < hi {
			pieces = append(pieces, piece{lo: lo, hi: hi, off: total})
			total += hi - lo
		}
	}
	return pieces, total
}

// refineParallelCutoff is the number of selected records below which a
// single query's refinement is not worth fanning out across shards. A
// variable so tests can force the parallel path on small fixtures.
var refineParallelCutoff = 4096

// refineStat scans the plan's record pieces and materializes the matches.
// With parallel set and enough work, each shard refines the intersection
// of the pieces with its record range concurrently; the output is
// identical either way.
func (e *Engine) refineStat(ctx context.Context, plan Plan, parallel bool) ([]Match, error) {
	defer e.met.refineSeconds.ObserveSince(time.Now())
	db := e.ix.db
	pieces, total := e.planPieces(plan)
	e.met.candidates.Add(int64(total))
	obs.FromContext(ctx).AddCandidates(int64(total))
	if total == 0 {
		// nil, not an empty slice: byte-identical to the sequential path.
		return nil, ctx.Err()
	}
	out := make([]Match, total)
	fill := func(lo, hi, off int) {
		for i := lo; i < hi; i++ {
			out[off+i-lo] = Match{Pos: i, ID: db.ID(i), TC: db.TC(i), X: db.X(i), Y: db.Y(i), Dist: -1}
		}
	}
	if !parallel || len(e.shards) <= 1 || e.workers <= 1 || total < refineParallelCutoff {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		for _, p := range pieces {
			fill(p.lo, p.hi, p.off)
		}
		return out, nil
	}
	err := forEach(ctx, e.workers, len(e.shards), nil, func(_ *struct{}, s int) error {
		sh := e.shards[s]
		for _, p := range pieces {
			lo, hi := p.lo, p.hi
			if lo < sh.Lo {
				lo = sh.Lo
			}
			if hi > sh.Hi {
				hi = sh.Hi
			}
			if lo < hi {
				fill(lo, hi, p.off+lo-p.lo)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// refineRange scans the plan's record pieces keeping fingerprints within
// eps of the query. Result sizes are unknown up front, so parallel shards
// refine into pooled scratch buffers that are concatenated in shard (=
// key) order afterwards; the output is identical to the sequential scan.
func (e *Engine) refineRange(ctx context.Context, qf []float64, eps float64, plan Plan, parallel bool) ([]Match, error) {
	defer e.met.refineSeconds.ObserveSince(time.Now())
	db := e.ix.db
	epsSq := eps * eps
	pieces, total := e.planPieces(plan)
	e.met.candidates.Add(int64(total))
	obs.FromContext(ctx).AddCandidates(int64(total))
	scan := func(lo, hi int, out []Match) []Match {
		for i := lo; i < hi; i++ {
			if d := distSqToFP(qf, db.FP(i)); d <= epsSq {
				out = append(out, Match{Pos: i, ID: db.ID(i), TC: db.TC(i), X: db.X(i), Y: db.Y(i), Dist: math.Sqrt(d)})
			}
		}
		return out
	}
	if !parallel || len(e.shards) <= 1 || e.workers <= 1 || total < refineParallelCutoff {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		var out []Match
		for _, p := range pieces {
			out = scan(p.lo, p.hi, out)
		}
		return out, nil
	}
	parts := make([]*[]Match, len(e.shards))
	defer func() {
		for _, b := range parts {
			if b != nil {
				*b = (*b)[:0]
				e.bufs.Put(b)
			}
		}
	}()
	err := forEach(ctx, e.workers, len(e.shards), nil, func(_ *struct{}, s int) error {
		sh := e.shards[s]
		buf := e.bufs.Get().(*[]Match)
		parts[s] = buf
		for _, p := range pieces {
			lo, hi := p.lo, p.hi
			if lo < sh.Lo {
				lo = sh.Lo
			}
			if hi > sh.Hi {
				hi = sh.Hi
			}
			if lo < hi {
				*buf = scan(lo, hi, *buf)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	n := 0
	for _, b := range parts {
		n += len(*b)
	}
	if n == 0 {
		// nil, not an empty slice: byte-identical to the sequential path.
		return nil, nil
	}
	out := make([]Match, 0, n)
	for _, b := range parts {
		out = append(out, *b...)
	}
	return out, nil
}

// SearchStat executes a complete statistical query through the engine:
// one plan against the global curve, refinement fanned out across shards.
// Results are byte-identical to Index.SearchStat.
func (e *Engine) SearchStat(ctx context.Context, q []byte, sq StatQuery) ([]Match, Plan, error) {
	if err := sq.validate(e.ix.db.Dims()); err != nil {
		return nil, Plan{}, err
	}
	e.met.statQueries.Inc()
	e.met.inflight.Add(1)
	defer e.met.inflight.Add(-1)
	tr := obs.FromContext(ctx)
	qc := e.getCtx()
	defer e.putCtx(qc)
	t0 := time.Now()
	plan, err := e.planStat(ctx, qc, q, sq)
	if err != nil {
		return nil, Plan{}, err
	}
	if tr != nil {
		id := tr.StageSince("plan", t0)
		tr.Annotate(id, "blocks", strconv.Itoa(plan.Blocks))
		tr.Annotate(id, "descentNodes", strconv.Itoa(plan.DescentNodes))
	}
	t1 := time.Now()
	matches, err := e.refineStat(ctx, plan, true)
	if err != nil {
		return nil, Plan{}, err
	}
	if tr != nil {
		id := tr.StageSince("refine", t1)
		tr.Annotate(id, "candidates", strconv.Itoa(len(matches)))
		tr.Annotate(id, "shards", strconv.Itoa(len(e.shards)))
	}
	tr.AddSegments(int64(len(e.shards)))
	if e.tuner != nil {
		e.tuner.observe(t1.Sub(t0), time.Since(t1))
	}
	return matches, plan, nil
}

// SearchRange executes a complete ε-range query through the engine.
// Results are byte-identical to Index.SearchRange.
func (e *Engine) SearchRange(ctx context.Context, q []byte, eps float64) ([]Match, Plan, error) {
	if eps < 0 {
		return nil, Plan{}, fmt.Errorf("core: negative range radius %v", eps)
	}
	e.met.rangeQueries.Inc()
	e.met.inflight.Add(1)
	defer e.met.inflight.Add(-1)
	tr := obs.FromContext(ctx)
	qc := e.getCtx()
	defer e.putCtx(qc)
	if err := qc.setQuery(q); err != nil {
		return nil, Plan{}, err
	}
	t0 := time.Now()
	plan := e.ix.planRangeFloat(qc.qf, eps)
	e.notePlan(ctx, plan, t0)
	if tr != nil {
		id := tr.StageSince("plan", t0)
		tr.Annotate(id, "blocks", strconv.Itoa(plan.Blocks))
		tr.Annotate(id, "descentNodes", strconv.Itoa(plan.DescentNodes))
	}
	t1 := time.Now()
	matches, err := e.refineRange(ctx, qc.qf, eps, plan, true)
	if err != nil {
		return nil, Plan{}, err
	}
	if tr != nil {
		id := tr.StageSince("refine", t1)
		tr.Annotate(id, "matches", strconv.Itoa(len(matches)))
		tr.Annotate(id, "shards", strconv.Itoa(len(e.shards)))
	}
	tr.AddSegments(int64(len(e.shards)))
	return matches, plan, nil
}

// SearchKNN answers a k-nearest-neighbor query. The best-first traversal
// is inherently sequential (each expansion depends on the current k-th
// distance), so a single k-NN query is not sharded; batches parallelize
// across queries instead (SearchKNNBatch).
func (e *Engine) SearchKNN(ctx context.Context, q []byte, k, maxLeaves int) ([]Match, KNNStats, error) {
	if err := ctx.Err(); err != nil {
		return nil, KNNStats{}, err
	}
	e.met.knnQueries.Inc()
	e.met.inflight.Add(1)
	defer e.met.inflight.Add(-1)
	t0 := time.Now()
	m, st, err := e.ix.SearchKNN(q, k, maxLeaves)
	if err != nil {
		return nil, KNNStats{}, err
	}
	e.met.candidates.Add(int64(st.Scanned))
	if tr := obs.FromContext(ctx); tr != nil {
		tr.StageSince("knn", t0)
		tr.AddCandidates(int64(st.Scanned))
	}
	return m, st, nil
}

// SearchStatBatch pipelines many statistical queries across the worker
// pool (the batching of eq. 5, executed in parallel): each worker plans
// and refines whole queries with its own reusable context. results[i]
// corresponds to queries[i] and equals the sequential Index.SearchStat
// output for that query.
func (e *Engine) SearchStatBatch(ctx context.Context, queries [][]byte, sq StatQuery) ([][]Match, error) {
	if err := sq.validate(e.ix.db.Dims()); err != nil {
		return nil, err
	}
	e.met.statQueries.Add(int64(len(queries)))
	e.met.batchQueries.Add(int64(len(queries)))
	e.met.inflight.Add(1)
	defer e.met.inflight.Add(-1)
	results := make([][]Match, len(queries))
	err := forEach(ctx, e.workers, len(queries), e.getCtx, func(qc *queryContext, i int) error {
		t0 := time.Now()
		plan, err := e.planStat(ctx, qc, queries[i], sq)
		if err != nil {
			return fmt.Errorf("query %d: %w", i, err)
		}
		t1 := time.Now()
		matches, err := e.refineStat(ctx, plan, false)
		if err != nil {
			return err
		}
		if e.tuner != nil {
			e.tuner.observe(t1.Sub(t0), time.Since(t1))
		}
		results[i] = matches
		return nil
	}, e.putCtx)
	if err != nil {
		return nil, err
	}
	return results, nil
}

// SearchRangeBatch is SearchStatBatch for ε-range queries.
func (e *Engine) SearchRangeBatch(ctx context.Context, queries [][]byte, eps float64) ([][]Match, error) {
	if eps < 0 {
		return nil, fmt.Errorf("core: negative range radius %v", eps)
	}
	e.met.rangeQueries.Add(int64(len(queries)))
	e.met.batchQueries.Add(int64(len(queries)))
	e.met.inflight.Add(1)
	defer e.met.inflight.Add(-1)
	results := make([][]Match, len(queries))
	err := forEach(ctx, e.workers, len(queries), e.getCtx, func(qc *queryContext, i int) error {
		if err := qc.setQuery(queries[i]); err != nil {
			return fmt.Errorf("query %d: %w", i, err)
		}
		t0 := time.Now()
		plan := e.ix.planRangeFloat(qc.qf, eps)
		e.notePlan(ctx, plan, t0)
		matches, err := e.refineRange(ctx, qc.qf, eps, plan, false)
		if err != nil {
			return err
		}
		results[i] = matches
		return nil
	}, e.putCtx)
	if err != nil {
		return nil, err
	}
	return results, nil
}

// SearchKNNBatch answers many k-NN queries in parallel, one worker per
// query.
func (e *Engine) SearchKNNBatch(ctx context.Context, queries [][]byte, k, maxLeaves int) ([][]Match, []KNNStats, error) {
	e.met.knnQueries.Add(int64(len(queries)))
	e.met.batchQueries.Add(int64(len(queries)))
	e.met.inflight.Add(1)
	defer e.met.inflight.Add(-1)
	results := make([][]Match, len(queries))
	stats := make([]KNNStats, len(queries))
	err := forEach(ctx, e.workers, len(queries), nil, func(_ *struct{}, i int) error {
		m, st, err := e.ix.SearchKNN(queries[i], k, maxLeaves)
		if err != nil {
			return fmt.Errorf("query %d: %w", i, err)
		}
		e.met.candidates.Add(int64(st.Scanned))
		obs.FromContext(ctx).AddCandidates(int64(st.Scanned))
		results[i], stats[i] = m, st
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	return results, stats, nil
}

// forEach runs fn(state, i) for every i in [0, n) on up to workers
// goroutines. Each goroutine draws its own state from mk once (nil mk
// passes nil state) and returns it through put when done. The first error
// cancels remaining iterations; a canceled ctx does the same and is
// reported. With workers <= 1 everything runs on the calling goroutine,
// preserving strict iteration order.
func forEach[S any](ctx context.Context, workers, n int, mk func() S, fn func(S, int) error, put ...func(S)) error {
	release := func(S) {}
	if len(put) > 0 {
		release = put[0]
	}
	acquire := func() (s S) {
		if mk != nil {
			s = mk()
		}
		return s
	}
	if n == 0 {
		return ctx.Err()
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		s := acquire()
		defer release(s)
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(s, i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		wg       sync.WaitGroup
		next     atomic.Int64
		mu       sync.Mutex
		firstErr error
		stop     atomic.Bool
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
		stop.Store(true)
	}
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := acquire()
			defer release(s)
			for !stop.Load() {
				if err := ctx.Err(); err != nil {
					fail(err)
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := fn(s, i); err != nil {
					fail(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	return firstErr
}
