package hilbert

import (
	"fmt"

	"s3cbcd/internal/bitkey"
)

// Block is one element of the depth-p partition of the curve: a
// hyper-rectangle of the grid together with the curve interval
// [Start, End) that visits exactly its cells.
type Block struct {
	// Lo and Hi bound the block per dimension: cell coordinates x satisfy
	// Lo[j] <= x[j] < Hi[j]. The slices alias descent-internal storage and
	// are only valid during the callback; copy them to retain.
	Lo, Hi []uint32
	// Start and End delimit the half-open curve interval of the block.
	Start, End bitkey.Key
	// Depth is the partition depth p the block belongs to.
	Depth int
}

// Keep decides, for an internal descent node covering the given bounds,
// whether to continue descending into it. Bounds follow Block semantics
// (half-open, aliased storage). Returning false prunes the whole subtree:
// the geometric filtering rule of a range query or — the point of the
// paper — the probabilistic rule of a statistical query.
type Keep func(lo, hi []uint32) bool

// Emit receives each surviving depth-p block, in curve order. Returning
// false aborts the descent early.
type Emit func(b Block) bool

// StepVisitor observes the descent one bit at a time, which lets pruning
// rules maintain their decision quantity *incrementally*: every descent
// step halves exactly one dimension, so a product of per-dimension masses
// (statistical filtering) or a sum of per-dimension distances (geometric
// filtering) changes in one factor/term only. This is what makes the
// filtering step cheap at D = 20 — recomputing a 20-factor product at
// every node would dominate the query time.
type StepVisitor interface {
	// Enter is called when the descent halves dimension dim to [lo, hi).
	// Returning false prunes the subtree; Leave is then NOT called for
	// this step.
	Enter(dim int, lo, hi uint32) bool
	// Leave undoes the matching Enter during backtracking.
	Leave(dim int)
	// Leaf receives each surviving depth-p block in curve order;
	// returning false aborts the walk.
	Leaf(b Block) bool
}

// DescendSteps is Descend with incremental per-dimension notifications.
// It panics if depth is outside [0, K*D].
func (c *Curve) DescendSteps(depth int, v StepVisitor) {
	if depth < 0 || depth > c.IndexBits() {
		panic(fmt.Sprintf("hilbert: depth %d outside [0,%d]", depth, c.IndexBits()))
	}
	d := &descent{
		c:     c,
		depth: depth,
		stepV: v,
		lo:    make([]uint32, c.dims),
		hi:    make([]uint32, c.dims),
	}
	side := c.SideLen()
	for j := range d.hi {
		d.hi[j] = side
	}
	if depth == 0 {
		v.Leaf(Block{
			Lo: d.lo, Hi: d.hi,
			Start: bitkey.Zero,
			End:   endOfInterval(bitkey.Zero, 0, c.IndexBits()),
			Depth: 0,
		})
		return
	}
	d.walk(bitkey.Zero, 0, initialState(), 0, 0)
}

// Descend partitions the curve into 2^depth intervals and walks the
// induced block tree. keep is consulted at every internal node (and may be
// nil to keep everything); emit receives the surviving leaves in curve
// order. Descend panics if depth is outside [0, K*D].
//
// The walk consumes one index bit per tree edge. Within a level the bits
// are the binary rank w of the Gray-coded, state-transformed cell label;
// because a reflected Gray code preserves aligned prefixes, every partial
// prefix of q < D bits pins q known label bits, i.e. halves the node's
// rectangle along q known dimensions. This is why the partition is made of
// hyper-rectangles at every depth, not only at multiples of D.
func (c *Curve) Descend(depth int, keep Keep, emit Emit) {
	if depth < 0 || depth > c.IndexBits() {
		panic(fmt.Sprintf("hilbert: depth %d outside [0,%d]", depth, c.IndexBits()))
	}
	d := &descent{
		c:     c,
		depth: depth,
		keep:  keep,
		emit:  emit,
		lo:    make([]uint32, c.dims),
		hi:    make([]uint32, c.dims),
	}
	side := c.SideLen()
	for j := range d.hi {
		d.hi[j] = side
	}
	if depth == 0 {
		emit(Block{
			Lo: d.lo, Hi: d.hi,
			Start: bitkey.Zero,
			End:   endOfInterval(bitkey.Zero, 0, c.IndexBits()),
			Depth: 0,
		})
		return
	}
	d.walk(bitkey.Zero, 0, initialState(), 0, 0)
}

// descent carries the mutable walk state. lo/hi are updated in place and
// restored on backtrack, so the walk allocates nothing per node. Exactly
// one of (keep/emit) or stepV is set.
type descent struct {
	c      *Curve
	depth  int
	keep   Keep
	emit   Emit
	stepV  StepVisitor
	lo, hi []uint32
	done   bool
}

// walk explores the node whose consumed index prefix is prefix (m bits).
// st is the Hilbert state of the current level; q and wp are the count and
// value of the within-level bits of w consumed so far.
func (d *descent) walk(prefix bitkey.Key, m int, st state, q int, wp uint64) {
	if d.done {
		return
	}
	if m == d.depth {
		b := Block{
			Lo: d.lo, Hi: d.hi,
			Start: prefix.Shl(uint(d.c.IndexBits() - m)),
			Depth: d.depth,
		}
		b.End = endOfInterval(prefix, m, d.c.IndexBits())
		if d.stepV != nil {
			if !d.stepV.Leaf(b) {
				d.done = true
			}
		} else if !d.emit(b) {
			d.done = true
		}
		return
	}
	n := uint(d.c.dims)
	for b := uint64(0); b <= 1; b++ {
		// Gray bit introduced by this w bit: g[D-1-q] = w[D-1-q] ^ w[D-q].
		prev := uint64(0)
		if q > 0 {
			prev = wp & 1
		}
		gbit := b ^ prev
		posG := n - 1 - uint(q)
		posL := (posG + st.d + 1) % n // label bit position = dimension
		lbit := gbit ^ ((st.e >> posL) & 1)

		dim := int(posL)
		mid := (d.lo[dim] + d.hi[dim]) / 2
		savedLo, savedHi := d.lo[dim], d.hi[dim]
		if lbit == 1 {
			d.lo[dim] = mid
		} else {
			d.hi[dim] = mid
		}

		var entered bool
		if d.stepV != nil {
			entered = d.stepV.Enter(dim, d.lo[dim], d.hi[dim])
		} else {
			entered = d.keep == nil || d.keep(d.lo, d.hi)
		}
		if entered {
			childPrefix := prefix.Shl(1).OrLowBits(b)
			if q+1 == int(n) {
				w := wp<<1 | b
				d.walk(childPrefix, m+1, st.next(w, n), 0, 0)
			} else {
				d.walk(childPrefix, m+1, st, q+1, wp<<1|b)
			}
			if d.stepV != nil {
				d.stepV.Leave(dim)
			}
		}

		d.lo[dim], d.hi[dim] = savedLo, savedHi
		if d.done {
			return
		}
	}
}

// endOfInterval returns (prefix+1) << (total-m), the exclusive end of the
// curve interval of an m-bit prefix. The topmost interval ends at
// 2^total, which is representable exactly because New rejects
// configurations with total >= bitkey.MaxBits.
func endOfInterval(prefix bitkey.Key, m, total int) bitkey.Key {
	return prefix.Inc().Shl(uint(total - m))
}

// Interval is a half-open range [Start, End) of curve indices.
type Interval struct {
	Start, End bitkey.Key
}

// MergeIntervals coalesces adjacent or overlapping intervals. The input
// must be sorted by Start (Descend emits blocks in curve order, so
// collecting Block.Start/End preserves this). It merges in place and
// returns the shortened slice.
func MergeIntervals(ivs []Interval) []Interval {
	if len(ivs) == 0 {
		return ivs
	}
	out := ivs[:1]
	for _, iv := range ivs[1:] {
		last := &out[len(out)-1]
		if iv.Start.Cmp(last.End) <= 0 {
			if last.End.Less(iv.End) {
				last.End = iv.End
			}
			continue
		}
		out = append(out, iv)
	}
	return out
}
