package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

// Bucket assignment follows Prometheus le semantics: a value lands in
// the first bucket whose upper bound is >= the value, boundary values
// inclusive.
func TestHistogramBucketBoundaries(t *testing.T) {
	h := NewHistogram("s3_test_h", "t", []float64{1, 10, 100})
	for _, v := range []float64{0, 1, 1.5, 10, 10.5, 100, 101, 1e9} {
		h.Observe(v)
	}
	want := []uint64{2, 2, 2, 2} // {0,1} {1.5,10} {10.5,100} {101,1e9}
	for i, w := range want {
		if got := h.counts[i].Load(); got != w {
			t.Errorf("bucket %d holds %d, want %d", i, got, w)
		}
	}
	if h.Count() != 8 {
		t.Errorf("count %d, want 8", h.Count())
	}
	wantSum := 0 + 1 + 1.5 + 10 + 10.5 + 100 + 101 + 1e9
	if math.Abs(h.Sum()-wantSum) > 1e-9 {
		t.Errorf("sum %v, want %v", h.Sum(), wantSum)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram("s3_test_q", "t", []float64{10, 20, 30, 40})
	// 100 observations uniform over (0, 40]: 25 per bucket.
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i) * 0.4)
	}
	for _, c := range []struct{ q, want, tol float64 }{
		{0.5, 20, 0.5},   // median at the 20 boundary
		{0.25, 10, 0.5},  // first quartile at the 10 boundary
		{0.75, 30, 0.5},  // third quartile at the 30 boundary
		{0.9, 36, 0.75},  // interpolated inside the last bucket
		{1.0, 40, 0.01},  // max is the top bound
		{0.0, 0.0, 0.25}, // q=0 degenerates to the bucket floor
	} {
		if got := h.Quantile(c.q); math.Abs(got-c.want) > c.tol {
			t.Errorf("q%.2f = %v, want %v +- %v", c.q, got, c.want, c.tol)
		}
	}
	// Overflow observations saturate the estimate at the top bound.
	h2 := NewHistogram("s3_test_q2", "t", []float64{1, 2})
	for i := 0; i < 10; i++ {
		h2.Observe(50)
	}
	if got := h2.Quantile(0.5); got != 2 {
		t.Errorf("overflow quantile %v, want 2 (top bound)", got)
	}
	// Empty histogram.
	if got := NewHistogram("s3_e", "t", []float64{1}).Quantile(0.5); got != 0 {
		t.Errorf("empty quantile %v, want 0", got)
	}
	// Nil receiver is inert.
	var nilH *Histogram
	nilH.Observe(1)
	if nilH.Quantile(0.5) != 0 || nilH.Count() != 0 {
		t.Error("nil histogram is not inert")
	}
}

// Counters, gauges and histograms take concurrent updates without loss
// (run under -race in make race).
func TestConcurrentUpdates(t *testing.T) {
	c := NewCounter("s3_test_c", "t")
	g := NewGauge("s3_test_g", "t")
	h := NewHistogram("s3_test_ch", "t", []float64{0.5, 1.5})
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(1)
			}
		}()
	}
	wg.Wait()
	if c.Value() != workers*per {
		t.Errorf("counter %d, want %d", c.Value(), workers*per)
	}
	if g.Value() != workers*per {
		t.Errorf("gauge %v, want %d", g.Value(), workers*per)
	}
	if h.Count() != workers*per {
		t.Errorf("histogram count %d, want %d", h.Count(), workers*per)
	}
	if h.Sum() != workers*per {
		t.Errorf("histogram sum %v, want %d", h.Sum(), workers*per)
	}
	if n := h.counts[1].Load(); n != workers*per {
		t.Errorf("le=1.5 bucket %d, want %d", n, workers*per)
	}
}

// Golden test of the text exposition: families sorted, HELP/TYPE once
// per family, cumulative buckets, labelled series.
func TestPrometheusRenderingGolden(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("s3_test_requests_total", "requests served")
	c.Add(3)
	g := r.Gauge("s3_test_inflight", "in-flight requests")
	g.Set(2)
	r.GaugeFunc("s3_test_fn", "callback gauge", func() float64 { return 7.5 })
	h := r.Histogram(`s3_test_seconds{route="/x"}`, "latency", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)
	lc := r.Counter(`s3_test_requests_by_route_total{route="/x",code="2xx"}`, "by route")
	lc.Inc()

	var b strings.Builder
	r.WritePrometheus(&b)
	got := b.String()
	want := `# HELP s3_test_fn callback gauge
# TYPE s3_test_fn gauge
s3_test_fn 7.5
# HELP s3_test_inflight in-flight requests
# TYPE s3_test_inflight gauge
s3_test_inflight 2
# HELP s3_test_requests_by_route_total by route
# TYPE s3_test_requests_by_route_total counter
s3_test_requests_by_route_total{route="/x",code="2xx"} 1
# HELP s3_test_requests_total requests served
# TYPE s3_test_requests_total counter
s3_test_requests_total 3
# HELP s3_test_seconds latency
# TYPE s3_test_seconds histogram
s3_test_seconds_bucket{route="/x",le="0.1"} 1
s3_test_seconds_bucket{route="/x",le="1"} 2
s3_test_seconds_bucket{route="/x",le="+Inf"} 3
s3_test_seconds_sum{route="/x"} 5.55
s3_test_seconds_count{route="/x"} 3
`
	if got != want {
		t.Errorf("rendering mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("s3_test_dup_total", "t")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	r.Counter("s3_test_dup_total", "t")
}

// Same family with distinct label sets is not a duplicate.
func TestRegistryLabelledSeries(t *testing.T) {
	r := NewRegistry()
	r.Counter(`s3_test_lbl_total{route="/a"}`, "t")
	r.Counter(`s3_test_lbl_total{route="/b"}`, "t")
	var b strings.Builder
	r.WritePrometheus(&b)
	if n := strings.Count(b.String(), "# TYPE s3_test_lbl_total counter"); n != 1 {
		t.Errorf("family header appears %d times, want 1:\n%s", n, b.String())
	}
}
