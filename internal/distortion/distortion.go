// Package distortion estimates the statistical query's distortion model
// (Section IV-C): for a given video transformation, the distribution of
// ΔS = S(m) − S(t(m)) between the fingerprint of a referenced pattern and
// the fingerprint of its transformed version, computed with a *simulated
// perfect interest point detector* — the position of each point in the
// transformed sequence is derived from its position in the original, so
// the measured distortion isolates the descriptor's sensitivity from the
// detector's repeatability.
package distortion

import (
	"fmt"
	"math"

	"s3cbcd/internal/fingerprint"
	"s3cbcd/internal/vidsim"
)

// Pair is one (reference, distorted) fingerprint correspondence.
type Pair struct {
	Ref, Dist fingerprint.Fingerprint
}

// Delta returns the distortion vector ΔS = Ref − Dist, component-wise.
func (p Pair) Delta() [fingerprint.D]float64 {
	var d [fingerprint.D]float64
	for j := range d {
		d[j] = float64(p.Ref[j]) - float64(p.Dist[j])
	}
	return d
}

// Norm returns ‖ΔS‖, the L2 norm of the distortion vector.
func (p Pair) Norm() float64 {
	s := 0.0
	for j := range p.Ref {
		d := float64(p.Ref[j]) - float64(p.Dist[j])
		s += d * d
	}
	return math.Sqrt(s)
}

// Estimate is the fitted model for one transformation.
type Estimate struct {
	// Sigmas are the per-component RMS distortions σ_j (the model is
	// zero-mean, so the second moment about zero is the right scale).
	Sigmas [fingerprint.D]float64
	// Sigma is the mean of the σ_j — the single parameter of the
	// practical model, and the paper's severity criterion (Table I).
	Sigma float64
	// Pairs is the number of correspondences used.
	Pairs int
}

// CollectPairs extracts fingerprints from each original sequence, applies
// the transformation, and recomputes the descriptor at the perfectly
// mapped interest point positions in the transformed sequence. Points
// that leave the frame or whose characterization degenerates are skipped.
func CollectPairs(seqs []*vidsim.Sequence, tf vidsim.Transform, cfg fingerprint.Config) []Pair {
	var pairs []Pair
	for _, seq := range seqs {
		if seq.Len() == 0 {
			continue
		}
		w, h := seq.Frames[0].W, seq.Frames[0].H
		locals := fingerprint.Extract(seq, cfg)
		if len(locals) == 0 {
			continue
		}
		tseq := vidsim.ApplySeq(tf, seq)
		ext := fingerprint.NewExtractor(tseq, cfg)
		for _, l := range locals {
			tx, ty, ok := tf.MapPoint(l.X, l.Y, w, h)
			if !ok {
				continue
			}
			dfp, ok := ext.DescribeAt(tx, ty, int(l.TC))
			if !ok {
				continue
			}
			pairs = append(pairs, Pair{Ref: l.FP, Dist: dfp})
		}
	}
	return pairs
}

// Fit computes the model parameters from correspondences.
func Fit(pairs []Pair) (Estimate, error) {
	if len(pairs) == 0 {
		return Estimate{}, fmt.Errorf("distortion: no correspondences to fit")
	}
	var est Estimate
	est.Pairs = len(pairs)
	var sumSq [fingerprint.D]float64
	for _, p := range pairs {
		d := p.Delta()
		for j, v := range d {
			sumSq[j] += v * v
		}
	}
	mean := 0.0
	for j := range sumSq {
		est.Sigmas[j] = math.Sqrt(sumSq[j] / float64(len(pairs)))
		mean += est.Sigmas[j]
	}
	est.Sigma = mean / fingerprint.D
	return est, nil
}

// EstimateModel is CollectPairs followed by Fit.
func EstimateModel(seqs []*vidsim.Sequence, tf vidsim.Transform, cfg fingerprint.Config) (Estimate, error) {
	return Fit(CollectPairs(seqs, tf, cfg))
}

// Norms returns the ‖ΔS‖ values of a correspondence set (the abscissa of
// Figure 1).
func Norms(pairs []Pair) []float64 {
	out := make([]float64, len(pairs))
	for i, p := range pairs {
		out[i] = p.Norm()
	}
	return out
}

// PooledDeltas returns every per-component distortion sample of a
// correspondence set, pooled across components — the input for fitting
// alternative per-component models (mixture, empirical, heavy-tailed).
func PooledDeltas(pairs []Pair) []float64 {
	out := make([]float64, 0, len(pairs)*fingerprint.D)
	for _, p := range pairs {
		d := p.Delta()
		out = append(out, d[:]...)
	}
	return out
}
