// Command s3monitor reproduces the TV monitoring deployment of Section
// V-D: it synthesizes a continuous channel stream with copies of
// referenced videos embedded at random positions among unrelated filler,
// monitors it incrementally with a sliding decision window (the frames
// are fed second by second, as a capture card would deliver them), and
// reports the detections together with the monitoring speed relative to
// real time and the per-window decision latency percentiles.
//
// Usage:
//
//	s3monitor -db archive.s3db -minutes 2 -copies 4
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"time"

	s3 "s3cbcd"
	"s3cbcd/internal/obs"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("s3monitor: ")
	var (
		dbPath  = flag.String("db", "archive.s3db", "database file from s3index")
		minutes = flag.Float64("minutes", 1, "stream length in minutes (25 fps)")
		copies  = flag.Int("copies", 3, "number of embedded copies")
		videos  = flag.Int("corpus-videos", 12, "reference corpus size (must match s3index)")
		frames  = flag.Int("frames", 250, "frames per reference video (must match s3index)")
		seed    = flag.Int64("corpus-seed", 1, "corpus seed (must match s3index)")
		alpha   = flag.Float64("alpha", 0.80, "statistical query expectation")
		sigma   = flag.Float64("sigma", 20, "distortion model sigma")

		planCache = flag.Bool("plan-cache", true,
			"cache filtering-step plans across the stream's repeated fingerprints (answers are identical)")
		planCacheEntries = flag.Int("plan-cache-entries", 0,
			"plan cache capacity in plans (0 = default)")
		traceSlowest = flag.Bool("trace-slowest", false,
			"trace every decision window and print the slowest window's span tree")
	)
	flag.Parse()

	det, err := s3.OpenDetector(*dbPath, s3.CBCDConfig{Alpha: *alpha, Sigma: *sigma})
	if err != nil {
		log.Fatal(err)
	}
	if *planCache {
		det.Engine().EnablePlanCache(*planCacheEntries)
	}
	thr, err := s3.CalibrateThreshold(det, []*s3.Video{
		s3.GenerateVideo(987101, 250), s3.GenerateVideo(987102, 250),
	})
	if err != nil {
		log.Fatal(err)
	}
	det.SetVoteThreshold(thr + thr/2)
	fmt.Printf("database: %d fingerprints; vote threshold %d\n",
		det.Index().DB().Len(), thr+thr/2)

	// Synthesize the channel: filler with *copies* embedded excerpts.
	const fps = 25
	total := int(*minutes * 60 * fps)
	r := rand.New(rand.NewSource(*seed ^ 0xCAFE))
	stream := &s3.Video{FPS: fps}
	type truth struct {
		id        int
		at, until int
	}
	var planted []truth
	fillerSeed := int64(31337)
	for stream.Len() < total {
		// A filler segment...
		fill := s3.GenerateVideo(fillerSeed, 150+r.Intn(150))
		fillerSeed++
		stream.Frames = append(stream.Frames, fill.Frames...)
		// ...then possibly a copy.
		if len(planted) < *copies {
			id := 1 + r.Intn(*videos)
			ref := s3.GenerateVideo(*seed+int64(id-1), *frames)
			from := r.Intn(ref.Len() - 150)
			at := stream.Len()
			stream.Frames = append(stream.Frames, ref.Frames[from:from+150]...)
			planted = append(planted, truth{id: id, at: at, until: stream.Len()})
		}
	}
	fmt.Printf("stream: %d frames (%.1f min); %d planted copies:\n",
		stream.Len(), float64(stream.Len())/fps/60, len(planted))
	for _, p := range planted {
		fmt.Printf("  video %2d at frames [%d,%d)\n", p.id, p.at, p.until)
	}

	// Monitor incrementally: frames arrive in one-second batches, the way
	// a capture pipeline would deliver them, and every decided window's
	// wall time lands in a latency histogram.
	mon, err := s3.NewStreamMonitor(det, 0, 0)
	if err != nil {
		log.Fatal(err)
	}
	lat := obs.NewHistogram("window_seconds", "decision window latency", obs.LatencyBuckets())
	mon.WindowLatency = lat
	var slowest obs.TraceReport
	haveSlowest := false
	if *traceSlowest {
		mon.TraceWindows = func(rep obs.TraceReport) {
			if !haveSlowest || rep.TotalMicros > slowest.TotalMicros {
				slowest, haveSlowest = rep, true
			}
		}
	}

	t0 := time.Now()
	var dets []s3.StreamDetection
	for at := 0; at < stream.Len(); at += fps {
		hi := at + fps
		if hi > stream.Len() {
			hi = stream.Len()
		}
		d, err := mon.Feed(stream.Frames[at:hi])
		if err != nil {
			log.Fatal(err)
		}
		dets = append(dets, d...)
	}
	tail, err := mon.Close()
	if err != nil {
		log.Fatal(err)
	}
	dets = append(dets, tail...)
	elapsed := time.Since(t0)

	fmt.Printf("\ndetections:\n")
	found := map[int]bool{}
	for _, d := range dets {
		fmt.Printf("  video %2d in window [%d,%d): offset %.1f, %d votes\n",
			d.ID, d.WindowStart, d.WindowEnd, d.Offset, d.Votes)
		for i, p := range planted {
			if int(d.ID) == p.id && int(d.WindowEnd) > p.at && int(d.WindowStart) < p.until {
				found[i] = true
			}
		}
	}
	streamDur := time.Duration(float64(stream.Len()) / fps * float64(time.Second))
	fmt.Printf("\nfound %d/%d planted copies; monitored %.1fs of video in %v (%.1fx real time)\n",
		len(found), len(planted), streamDur.Seconds(), elapsed.Round(time.Millisecond),
		streamDur.Seconds()/elapsed.Seconds())
	if n := lat.Count(); n > 0 {
		fmt.Printf("window latency over %d windows: p50 %s, p90 %s, p99 %s, mean %s\n",
			n, fmtSeconds(lat.Quantile(0.50)), fmtSeconds(lat.Quantile(0.90)),
			fmtSeconds(lat.Quantile(0.99)), fmtSeconds(lat.Sum()/float64(n)))
	}
	if haveSlowest {
		fmt.Printf("\nslowest window trace:\n")
		slowest.WriteTree(os.Stdout)
	}
	if st, ok := det.Engine().PlanCacheStats(); ok {
		total := st.Hits + st.Misses
		rate := 0.0
		if total > 0 {
			rate = float64(st.Hits) / float64(total)
		}
		fmt.Printf("plan cache: %d hits, %d misses (%.1f%% hit rate), %d entries\n",
			st.Hits, st.Misses, 100*rate, st.Entries)
	}
}

// fmtSeconds renders a latency in seconds with duration-style units.
func fmtSeconds(s float64) string {
	return time.Duration(s * float64(time.Second)).Round(10 * time.Microsecond).String()
}
