package s3

// Cold-tier serving benchmark: statistical and range queries at α=0.8,
// σ=18 over a live index whose sealed segments serve from disk through
// the block cache, against the same corpus served all-resident.
//
//	go test -run TestColdBenchSweep -bench-cold -timeout 30m .
//
// regenerates BENCH_cold.json in the repository root (gated behind the
// flag because building the corpus takes a while). The sweep covers
// cache budgets from "whole corpus fits" down to ~10% of the record
// bytes and a retention-free cache, then re-runs the uncached and 10%
// configurations with the segment sketch pre-filter and the quantized
// record codec on (sketch-on/off × codec-on/off rows over format-4
// segment files), reporting queries/sec, bytes read from disk per query,
// cache hit rate, sketch skip rate and codec reject counts — and
// verifies in-run that every configuration answers match-for-match
// identically to the resident baseline.
//
//	-bench-cold-records N   corpus size (default 200000)

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"testing"
	"time"

	"s3cbcd/internal/core"
	"s3cbcd/internal/experiments"
	"s3cbcd/internal/fingerprint"
	"s3cbcd/internal/hilbert"
	"s3cbcd/internal/store"
)

var (
	benchColdFlag    = flag.Bool("bench-cold", false, "run the cold-tier sweep and write BENCH_cold.json")
	benchColdRecords = flag.Int("bench-cold-records", 200_000, "corpus size for -bench-cold")
)

const (
	coldBenchQueries  = 96
	coldBenchSegments = 4
	coldBenchRounds   = 3
	coldBenchEps      = 24 // range query radius: tight enough that codes reject most candidates
)

type coldBenchResult struct {
	Name          string  `json:"name"`
	Sketch        bool    `json:"sketch"`
	Codec         bool    `json:"codec"`
	CacheBudget   int64   `json:"cache_budget_bytes"`
	BudgetPct     float64 `json:"cache_budget_pct_of_records"`
	QueriesPerSec float64 `json:"queries_per_sec"`
	BytesPerQuery float64 `json:"disk_bytes_read_per_query"`
	CacheHitRate  float64 `json:"cache_hit_rate"`
	CacheHits     int64   `json:"cache_hits"`
	CacheMisses   int64   `json:"cache_misses"`
	CacheEvicts   int64   `json:"cache_evictions"`

	SketchBytes      int     `json:"sketch_bytes,omitempty"`
	SkipRate         float64 `json:"segment_skip_rate,omitempty"`
	SegmentsSkipped  int64   `json:"segments_skipped,omitempty"`
	SkippedBlocks    int64   `json:"skipped_blocks,omitempty"`
	QuantizedRejects int64   `json:"quantized_rejects,omitempty"`
	FallbackReads    int64   `json:"exact_fallback_reads,omitempty"`
	BytesSaved       int64   `json:"bytes_saved,omitempty"`
}

// coldBenchDir builds a shared on-disk index: one live directory whose
// committed snapshot holds the corpus in a handful of sealed segments.
// With v4 set the segment files carry sketches and the quantized codec
// (format version 4); otherwise they are plain v3 files, so the sweep
// compares both generations of the format.
func coldBenchDir(t *testing.T, curve *hilbert.Curve, recs []store.Record, v4 bool) string {
	t.Helper()
	dir := t.TempDir()
	opt := core.LiveOptions{
		MemtableRecords: (len(recs) + coldBenchSegments - 1) / coldBenchSegments,
	}
	if v4 {
		opt.Sketch = true
		opt.ColdCodec = true
		opt.ColdRecords = 1 // every sealed segment is cold-eligible: codec rides all of them
	}
	li, err := core.OpenLiveIndex(curve, dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := li.Ingest(recs); err != nil {
		t.Fatal(err)
	}
	if err := li.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := li.Close(); err != nil {
		t.Fatal(err)
	}
	return dir
}

// dirRecordBytes sums the on-disk exact record-area bytes of the
// committed segments — the quantity cache budgets are expressed against.
func dirRecordBytes(t *testing.T, dir string) int64 {
	t.Helper()
	man, err := store.RecoverManifestFS(store.OSFS, dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, seg := range man.Segments {
		fl, err := store.Open(filepath.Join(dir, seg.Name))
		if err != nil {
			t.Fatal(err)
		}
		total += fl.RecordBytes()
		fl.Close()
	}
	return total
}

// TestColdBenchSweep measures the cold serving path against the resident
// baseline and writes BENCH_cold.json. Gated behind -bench-cold.
func TestColdBenchSweep(t *testing.T) {
	if !*benchColdFlag {
		t.Skip("pass -bench-cold to run the cold-tier sweep")
	}
	n := *benchColdRecords
	curve := hilbert.MustNew(fingerprint.D, 8)
	recs := experiments.FPCorpus(n, 1)
	refDB, err := store.Build(curve, recs)
	if err != nil {
		t.Fatal(err)
	}
	queries, _ := experiments.DistortedQueries(refDB, coldBenchQueries, shardBenchSigma, 2)
	sq := core.StatQuery{Alpha: shardBenchAlpha,
		Model: core.IsoNormal{D: fingerprint.D, Sigma: shardBenchSigma}}

	dir := coldBenchDir(t, curve, recs, false)
	dirV4 := coldBenchDir(t, curve, recs, true)
	recordBytes := dirRecordBytes(t, dir)
	t.Logf("corpus: %d records, %d segment record bytes", n, recordBytes)

	configs := []struct {
		name          string
		cold          bool
		budget        int64
		sketch, codec bool
	}{
		{name: "resident"},
		{name: "cold-full-cache", cold: true, budget: recordBytes},
		{name: "cold-10pct-cache", cold: true, budget: recordBytes / 10},
		{name: "cold-no-cache", cold: true},
		{name: "cold-no-cache-sketch", cold: true, sketch: true},
		{name: "cold-no-cache-codec", cold: true, codec: true},
		{name: "cold-no-cache-sketch-codec", cold: true, sketch: true, codec: true},
		{name: "cold-10pct-sketch-codec", cold: true, budget: recordBytes / 10, sketch: true, codec: true},
	}

	ctx := context.Background()
	var baseStat, baseRange [][]core.Match
	results := make([]coldBenchResult, 0, len(configs))
	byName := map[string]*coldBenchResult{}
	for _, cfg := range configs {
		cfs := store.NewCountingFS(store.OSFS)
		opt := core.LiveOptions{FS: cfs, Sketch: cfg.sketch, ColdCodec: cfg.codec}
		if cfg.cold {
			opt.ColdRecords = 1
			opt.Cache = store.NewBlockCache(cfg.budget)
		}
		// Sketch/codec configurations serve the v4 directory; the plain ones
		// serve the v3 directory, exactly what PR 6 measured.
		srcDir := dir
		if cfg.sketch || cfg.codec {
			srcDir = dirV4
		}
		li, err := core.OpenLiveIndex(curve, srcDir, opt)
		if err != nil {
			t.Fatal(err)
		}
		st := li.Stats()
		if cfg.cold && st.ColdSegments != st.Segments {
			t.Fatalf("%s: %d of %d segments opened cold", cfg.name, st.ColdSegments, st.Segments)
		}
		if cfg.sketch && st.SketchSegments != st.Segments {
			t.Fatalf("%s: %d of %d segments carry sketches", cfg.name, st.SketchSegments, st.Segments)
		}
		if cfg.codec && st.CodecSegments != st.Segments {
			t.Fatalf("%s: %d of %d segments carry the codec", cfg.name, st.CodecSegments, st.Segments)
		}

		// Warm pass: verifies every configuration answers exactly like the
		// resident baseline — the skip/reject machinery must be
		// observationally invisible — and, cold, populates the cache the way
		// a steady-state server would have it.
		ansStat := make([][]core.Match, len(queries))
		ansRange := make([][]core.Match, len(queries))
		for i, q := range queries {
			if ansStat[i], _, err = li.SearchStat(ctx, q, sq); err != nil {
				t.Fatal(err)
			}
			if ansRange[i], _, err = li.SearchRange(ctx, q, coldBenchEps); err != nil {
				t.Fatal(err)
			}
		}
		if baseStat == nil {
			baseStat, baseRange = ansStat, ansRange
		} else {
			if !reflect.DeepEqual(baseStat, ansStat) {
				t.Fatalf("%s: statistical answers differ from the resident baseline", cfg.name)
			}
			if !reflect.DeepEqual(baseRange, ansRange) {
				t.Fatalf("%s: range answers differ from the resident baseline", cfg.name)
			}
		}

		readBefore := cfs.ReadBytes()
		start := time.Now()
		for r := 0; r < coldBenchRounds; r++ {
			for _, q := range queries {
				if _, _, err := li.SearchStat(ctx, q, sq); err != nil {
					t.Fatal(err)
				}
				if _, _, err := li.SearchRange(ctx, q, coldBenchEps); err != nil {
					t.Fatal(err)
				}
			}
		}
		elapsed := time.Since(start).Seconds()
		nq := float64(coldBenchRounds * len(queries) * 2)
		res := coldBenchResult{
			Name:          cfg.name,
			Sketch:        cfg.sketch,
			Codec:         cfg.codec,
			CacheBudget:   cfg.budget,
			QueriesPerSec: nq / elapsed,
			BytesPerQuery: float64(cfs.ReadBytes()-readBefore) / nq,
		}
		if recordBytes > 0 {
			res.BudgetPct = 100 * float64(cfg.budget) / float64(recordBytes)
		}
		if cfg.cold {
			st := li.Stats()
			cs := st.Cache
			res.CacheHits, res.CacheMisses = cs.Hits, cs.Misses
			res.CacheEvicts = cs.Evictions
			if total := cs.Hits + cs.Misses; total > 0 {
				res.CacheHitRate = float64(cs.Hits) / float64(total)
			}
			res.SketchBytes = st.SketchBytes
			res.SegmentsSkipped = st.SegmentsSkipped
			if st.SketchConsults > 0 {
				res.SkipRate = float64(st.SegmentsSkipped) / float64(st.SketchConsults)
			}
			res.SkippedBlocks = st.SkippedBlocks
			res.QuantizedRejects = st.QuantizedRejects
			res.FallbackReads = st.FallbackReads
			res.BytesSaved = st.BytesSaved
		}
		if err := li.Close(); err != nil {
			t.Fatal(err)
		}
		t.Logf("%-28s budget %11d (%5.1f%%): %8.1f q/s, %10.0f disk bytes/query, hit rate %.3f, skipped blocks %d, rejects %d",
			res.Name, res.CacheBudget, res.BudgetPct, res.QueriesPerSec,
			res.BytesPerQuery, res.CacheHitRate, res.SkippedBlocks, res.QuantizedRejects)
		results = append(results, res)
		byName[res.Name] = &results[len(results)-1]
	}

	// The resident baseline reads nothing per query; a cold tier with a
	// cache must read dramatically less than one without; and the tentpole
	// claim — sketches plus codec at least halve the uncached cold bytes
	// read per query, at byte-identical answers (verified above).
	if res := byName["resident"]; res.BytesPerQuery != 0 {
		t.Errorf("resident config read %f bytes/query from disk", res.BytesPerQuery)
	}
	if full, none := byName["cold-full-cache"], byName["cold-no-cache"]; full.BytesPerQuery >= none.BytesPerQuery {
		t.Errorf("full cache reads as much as no cache (%.0f vs %.0f bytes/query)",
			full.BytesPerQuery, none.BytesPerQuery)
	}
	plain, both := byName["cold-no-cache"], byName["cold-no-cache-sketch-codec"]
	if both.BytesPerQuery*2 > plain.BytesPerQuery {
		t.Errorf("sketch+codec read %.0f bytes/query uncached, want <= half of plain %.0f",
			both.BytesPerQuery, plain.BytesPerQuery)
	}
	if both.SkippedBlocks == 0 || both.QuantizedRejects == 0 {
		t.Errorf("sketch+codec run skipped %d blocks and rejected %d candidates — machinery not firing",
			both.SkippedBlocks, both.QuantizedRejects)
	}

	report := map[string]interface{}{
		"benchmark": "cold-tier serving: sketch pre-filters and quantized codecs vs plain block-cached disk reads vs all-resident",
		"corpus": map[string]interface{}{
			"records":      n,
			"record_bytes": recordBytes,
			"segments":     coldBenchSegments,
			"dims":         fingerprint.D,
			"queries":      len(queries),
			"rounds":       coldBenchRounds,
			"alpha":        shardBenchAlpha,
			"sigma":        shardBenchSigma,
			"range_eps":    coldBenchEps,
		},
		"host": map[string]interface{}{
			"num_cpu":    runtime.NumCPU(),
			"go_version": runtime.Version(),
		},
		"note": fmt.Sprintf("All configurations answered match-for-match identically to the "+
			"resident baseline on both statistical and range queries (verified in-run). "+
			"disk_bytes_read_per_query counts bytes crossing the store.FS seam during the "+
			"timed passes (one statistical + one range search per query) on a %d-core host; "+
			"the warm pass populates the cache first, so it reflects steady-state serving. "+
			"Sketch rows skip blocks/segments whose Bloom occupancy filter proves the plan "+
			"misses them; codec rows serve statistical refinement from the lean record area "+
			"and reject range candidates on 4-bit quantized codes before touching exact bytes.",
			runtime.NumCPU()),
		"results": results,
	}
	raw, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_cold.json", append(raw, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Log("wrote BENCH_cold.json")
}
