// Package cbcd assembles the complete content-based video copy detection
// system of the paper: fingerprint extraction (Section III) over the S³
// index (Sections II and IV) with the temporal voting strategy (Section
// III) on top. An Indexer turns reference videos into the static
// database; a Detector identifies which referenced sequences a candidate
// clip copies; a Monitor applies the detector continuously to a stream
// with a sliding buffer, as in the TV monitoring deployment of Section
// V-D.
package cbcd

import (
	"context"
	"fmt"
	"time"

	"s3cbcd/internal/core"
	"s3cbcd/internal/fingerprint"
	"s3cbcd/internal/hilbert"
	"s3cbcd/internal/obs"
	"s3cbcd/internal/store"
	"s3cbcd/internal/vidsim"
	"s3cbcd/internal/vote"
)

// Order is the component order: fingerprints are byte-quantized, so the
// grid is [0, 2^8)^D.
const Order = 8

// Config collects the system parameters.
type Config struct {
	// Fingerprint parameterizes extraction. Zero value = defaults.
	Fingerprint fingerprint.Config
	// Depth is the index partition depth p; 0 selects DefaultDepth.
	Depth int
	// Alpha is the statistical query expectation. Default 0.80.
	Alpha float64
	// Sigma is the distortion model parameter (set from the most severe
	// transformation to defend against, Section IV-C). Default 20.
	Sigma float64
	// Vote parameterizes the voting strategy. Zero value = defaults.
	Vote vote.Config
	// Extract overrides the fingerprint extractor; nil selects the
	// paper's local fingerprints (fingerprint.Extract). The global
	// baseline of the local-vs-global motivation experiment plugs in
	// fingerprint.ExtractGlobal here.
	Extract func(*vidsim.Sequence, fingerprint.Config) []fingerprint.Local
	// Workers bounds the number of concurrent statistical queries during
	// detection. 0 or 1 searches serially; the index itself is safe for
	// concurrent queries, so each candidate fingerprint is an independent
	// unit of work. The same pool also serves intra-query shard
	// refinement, so index-level and detector-level parallelism compose
	// instead of oversubscribing each other.
	Workers int
	// Shards is the number of keyspace shards the detector's query engine
	// splits the index into (core.Engine). 0 or 1 keeps the monolithic
	// layout; results are identical at any value.
	Shards int
}

func (c Config) withDefaults() Config {
	if c.Alpha == 0 {
		c.Alpha = 0.80
	}
	if c.Sigma == 0 {
		c.Sigma = 20
	}
	if c.Extract == nil {
		c.Extract = fingerprint.Extract
	}
	return c
}

// DefaultConfig returns the paper's operating point: α = 80%, σ = 20.
func DefaultConfig() Config { return Config{}.withDefaults() }

func (c Config) validate() error {
	if c.Alpha <= 0 || c.Alpha >= 1 {
		return fmt.Errorf("cbcd: alpha %v outside (0,1)", c.Alpha)
	}
	if c.Sigma <= 0 {
		return fmt.Errorf("cbcd: sigma %v <= 0", c.Sigma)
	}
	return nil
}

// Indexer accumulates reference fingerprints and builds the static
// database (insertions happen only before Build, matching the paper's
// static S³ system).
type Indexer struct {
	cfg  Config
	recs []store.Record
}

// NewIndexer returns an empty indexer.
func NewIndexer(cfg Config) *Indexer {
	return &Indexer{cfg: cfg.withDefaults()}
}

// AddSequence extracts the local fingerprints of a reference sequence and
// schedules them under the given video identifier. It returns the number
// of fingerprints added.
func (in *Indexer) AddSequence(id uint32, seq *vidsim.Sequence) int {
	locals := in.cfg.Extract(seq, in.cfg.Fingerprint)
	for _, l := range locals {
		fp := make([]byte, fingerprint.D)
		copy(fp, l.FP[:])
		in.recs = append(in.recs, store.Record{
			FP: fp, ID: id, TC: l.TC,
			X: clampPos(l.X), Y: clampPos(l.Y),
		})
	}
	return len(locals)
}

// AddRecords schedules pre-extracted records (synthetic corpora, bulk
// loads). Records are copied by reference; callers must not mutate them.
func (in *Indexer) AddRecords(recs []store.Record) {
	in.recs = append(in.recs, recs...)
}

// Len returns the number of scheduled fingerprints.
func (in *Indexer) Len() int { return len(in.recs) }

// Build sorts the accumulated fingerprints into the index and returns the
// ready detector.
func (in *Indexer) Build() (*Detector, error) {
	curve, err := hilbert.New(fingerprint.D, Order)
	if err != nil {
		return nil, err
	}
	db, err := store.Build(curve, in.recs)
	if err != nil {
		return nil, err
	}
	return NewDetector(db, in.cfg)
}

// Detector runs copy detection queries against a built database. All
// per-fingerprint statistical queries go through one shared sharded query
// engine (core.Engine), whose worker pool serves both the fan-out over a
// clip's fingerprints and any intra-query shard refinement.
type Detector struct {
	cfg    Config
	index  *core.Index  // nil for live detectors
	engine *core.Engine // nil for live detectors
	search core.Searcher
}

// NewDetector wraps an existing database (e.g. loaded from a file).
func NewDetector(db *store.DB, cfg Config) (*Detector, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if db.Dims() != fingerprint.D {
		return nil, fmt.Errorf("cbcd: database has %d dims, want %d", db.Dims(), fingerprint.D)
	}
	ix, err := core.NewIndex(db, cfg.Depth)
	if err != nil {
		return nil, err
	}
	workers := cfg.Workers
	if workers < 1 {
		workers = 1
	}
	eng := core.NewEngine(ix, cfg.Shards, workers)
	return &Detector{cfg: cfg, index: ix, engine: eng, search: eng}, nil
}

// NewLiveDetector runs copy detection against a live segmented index
// (core.LiveIndex): the same voting pipeline, but reference material can
// be ingested or withdrawn while detection runs. Each SearchLocals batch
// executes against one consistent snapshot of the index.
func NewLiveDetector(li *core.LiveIndex, cfg Config) (*Detector, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if li.Curve().Dims() != fingerprint.D {
		return nil, fmt.Errorf("cbcd: live index has %d dims, want %d", li.Curve().Dims(), fingerprint.D)
	}
	return &Detector{cfg: cfg, search: li}, nil
}

// Index exposes the underlying S³ index (e.g. for depth tuning). It is
// nil for detectors over a live index.
func (d *Detector) Index() *core.Index { return d.index }

// Engine exposes the detector's query engine (e.g. to share it with a
// serving layer). It is nil for detectors over a live index.
func (d *Detector) Engine() *core.Engine { return d.engine }

// Searcher exposes the query surface detection runs through — the static
// engine or the live index.
func (d *Detector) Searcher() core.Searcher { return d.search }

// Config returns the detector's effective configuration.
func (d *Detector) Config() Config { return d.cfg }

// SetVoteThreshold updates the decision threshold n_sim, normally to a
// value obtained from CalibrateThreshold.
func (d *Detector) SetVoteThreshold(v int) { d.cfg.Vote.MinVotes = v }

// Query returns the statistical query the detector issues.
func (d *Detector) Query() core.StatQuery {
	return core.StatQuery{
		Alpha: d.cfg.Alpha,
		Model: core.IsoNormal{D: fingerprint.D, Sigma: d.cfg.Sigma},
	}
}

// SearchLocals runs one statistical query per candidate fingerprint
// through the shared query engine and shapes the results as voting
// candidates. With Config.Workers > 1 the engine pipelines the queries
// across its pool; the result order matches locals either way.
func (d *Detector) SearchLocals(locals []fingerprint.Local) ([]vote.Candidate, error) {
	return d.SearchLocalsCtx(context.Background(), locals)
}

// SearchLocalsCtx is SearchLocals with a caller context: a trace carried
// by ctx (obs.WithTrace) accumulates the batch's work counters.
func (d *Detector) SearchLocalsCtx(ctx context.Context, locals []fingerprint.Local) ([]vote.Candidate, error) {
	queries := make([][]byte, len(locals))
	for i := range locals {
		queries[i] = locals[i].FP[:]
	}
	results, err := d.search.SearchStatBatch(ctx, queries, d.Query())
	if err != nil {
		return nil, err
	}
	cands := make([]vote.Candidate, len(locals))
	for i, l := range locals {
		c := vote.Candidate{TC: l.TC, X: l.X, Y: l.Y}
		for _, m := range results[i] {
			c.Matches = append(c.Matches, vote.Match{ID: m.ID, TC: m.TC, X: m.X, Y: m.Y})
		}
		cands[i] = c
	}
	return cands, nil
}

// DetectClip identifies the referenced sequences the clip copies:
// extraction, per-fingerprint statistical search, then the voting
// decision over the whole clip's buffered results.
func (d *Detector) DetectClip(seq *vidsim.Sequence) ([]vote.Detection, error) {
	return d.DetectClipCtx(context.Background(), seq)
}

// DetectClipCtx is DetectClip with a caller context. A trace carried by
// ctx (obs.WithTrace) records the pipeline's stage wall times — extract,
// search, vote — plus the search work counters, so one traced detection
// shows where a clip's latency went.
func (d *Detector) DetectClipCtx(ctx context.Context, seq *vidsim.Sequence) ([]vote.Detection, error) {
	tr := obs.FromContext(ctx)
	t0 := time.Now()
	locals := d.cfg.Extract(seq, d.cfg.Fingerprint)
	tr.StageSince("extract", t0)
	t1 := time.Now()
	cands, err := d.SearchLocalsCtx(ctx, locals)
	if err != nil {
		return nil, err
	}
	tr.StageSince("search", t1)
	t2 := time.Now()
	dets := vote.Decide(cands, d.cfg.Vote)
	tr.StageSince("vote", t2)
	return dets, nil
}

// ScoreClip is DetectClip without the decision threshold: every candidate
// identifier with its vote count, used for threshold calibration.
func (d *Detector) ScoreClip(seq *vidsim.Sequence) ([]vote.Detection, error) {
	cands, err := d.SearchLocals(d.cfg.Extract(seq, d.cfg.Fingerprint))
	if err != nil {
		return nil, err
	}
	return vote.Score(cands, d.cfg.Vote), nil
}

// CalibrateThreshold sets the decision threshold the way the paper does
// ("less than 1 false alarm per hour"): it scores clips known *not* to be
// referenced and returns one more than the highest vote count any
// identifier achieved, i.e. the smallest threshold with zero false alarms
// on the calibration material.
func CalibrateThreshold(d *Detector, clips []*vidsim.Sequence) (int, error) {
	maxVotes := 0
	for _, clip := range clips {
		scores, err := d.ScoreClip(clip)
		if err != nil {
			return 0, err
		}
		for _, s := range scores {
			if s.Votes > maxVotes {
				maxVotes = s.Votes
			}
		}
	}
	return maxVotes + 1, nil
}

// clampPos quantizes an interest point coordinate into the record's
// uint16 position field.
func clampPos(v float64) uint16 {
	if v < 0 {
		return 0
	}
	if v > 65535 {
		return 65535
	}
	return uint16(v + 0.5)
}
