package vidsim

import (
	"math"
	"testing"
)

// dotFrame renders a small bright Gaussian blob at (cx, cy) on a dark
// background — a trackable landmark for point-mapping tests.
func dotFrame(w, h int, cx, cy float64) *Frame {
	f := NewFrame(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			dx := float64(x) - cx
			dy := float64(y) - cy
			f.Pix[y*w+x] = float32(20 + 230*math.Exp(-(dx*dx+dy*dy)/8))
		}
	}
	return f
}

// brightest returns the argmax pixel of a frame.
func brightest(f *Frame) (int, int) {
	bi, bv := 0, float32(-1)
	for i, v := range f.Pix {
		if v > bv {
			bi, bv = i, v
		}
	}
	return bi % f.W, bi / f.W
}

// TestMapPointTracksContent is the invariant the "perfect detector"
// simulation rests on (Section IV-C): MapPoint must send a content
// landmark to where the transformed frame actually shows it.
func TestMapPointTracksContent(t *testing.T) {
	const w, h = 96, 72
	landmarks := [][2]float64{{30, 20}, {60, 50}, {48, 36}, {12, 60}}
	transforms := []Transform{
		Identity{},
		Resize{Scale: 0.75},
		Resize{Scale: 1.4},
		VShift{Frac: 0.2},
		Gamma{G: 1.8},
		Contrast{Factor: 0.6},
		Compose{Resize{Scale: 0.8}, VShift{Frac: 0.1}},
	}
	for _, tf := range transforms {
		for _, lm := range landmarks {
			src := dotFrame(w, h, lm[0], lm[1])
			dst := tf.Apply(src)
			px, py, ok := tf.MapPoint(lm[0], lm[1], w, h)
			if !ok {
				continue // landmark legitimately left the frame
			}
			bx, by := brightest(dst)
			if math.Abs(float64(bx)-px) > 1.6 || math.Abs(float64(by)-py) > 1.6 {
				t.Errorf("%s: landmark (%v,%v) mapped to (%.1f,%.1f) but content is at (%d,%d)",
					tf.Name(), lm[0], lm[1], px, py, bx, by)
			}
		}
	}
}

// TestVShiftMapOutOfFrame checks that MapPoint reports !ok exactly when
// the shifted content leaves the visible area.
func TestVShiftMapOutOfFrame(t *testing.T) {
	tf := VShift{Frac: 0.5}
	_, _, ok := tf.MapPoint(10, 50, 96, 72) // 50+36 = 86 >= 72
	if ok {
		t.Error("point shifted past the bottom still ok")
	}
	_, y, ok := tf.MapPoint(10, 20, 96, 72)
	if !ok || y != 56 {
		t.Errorf("in-frame shift: y=%v ok=%v", y, ok)
	}
}

// TestInset checks the embedded-program transformation: content lands at
// the mapped position, the surround is flat background, and points
// always stay in frame for in-bounds offsets.
func TestInset(t *testing.T) {
	const w, h = 96, 72
	tf := Inset{Scale: 0.6, OffX: 0.2, OffY: 0.1, Background: 12}
	src := dotFrame(w, h, 40, 30)
	dst := tf.Apply(src)
	if dst.W != w || dst.H != h {
		t.Fatalf("inset changed frame size: %dx%d", dst.W, dst.H)
	}
	px, py, ok := tf.MapPoint(40, 30, w, h)
	if !ok {
		t.Fatal("mapped point out of frame")
	}
	bx, by := brightest(dst)
	if math.Abs(float64(bx)-px) > 1.6 || math.Abs(float64(by)-py) > 1.6 {
		t.Fatalf("content at (%d,%d), map says (%.1f,%.1f)", bx, by, px, py)
	}
	// Corners are background.
	if dst.At(0, 0) != 12 || dst.At(w-1, h-1) != 12 {
		t.Fatalf("background not filled: %v %v", dst.At(0, 0), dst.At(w-1, h-1))
	}
}

func TestInsetPanicsOnBadScale(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Inset{Scale: 1.5}.Apply(NewFrame(8, 8))
}
