package store

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"s3cbcd/internal/hilbert"
)

// FuzzOpen feeds arbitrary bytes to the file parser: it must never panic
// and must never return a File whose advertised geometry is unusable.
func FuzzOpen(f *testing.F) {
	// Seed corpus: a valid file, its truncations, and noise.
	curve := hilbert.MustNew(4, 4)
	db := MustBuild(curve, randRecords(rand.New(rand.NewSource(1)), curve, 8))
	dir := f.TempDir()
	valid := filepath.Join(dir, "valid.s3db")
	if err := db.WriteFile(valid, 2); err != nil {
		f.Fatal(err)
	}
	data, err := os.ReadFile(valid)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(data)
	f.Add(data[:20])
	f.Add([]byte("S3DB"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, blob []byte) {
		path := filepath.Join(t.TempDir(), "fuzz.s3db")
		if err := os.WriteFile(path, blob, 0o644); err != nil {
			t.Skip()
		}
		fl, err := Open(path)
		if err != nil {
			return // rejection is the expected outcome for garbage
		}
		defer fl.Close()
		// Anything Open accepts must behave: loading a record prefix
		// either succeeds or errors, never panics.
		n := fl.Count()
		if n > 16 {
			n = 16
		}
		if ch, err := fl.LoadRecords(0, n); err == nil {
			for i := 0; i < ch.Len(); i++ {
				_ = ch.FP(i)
				_ = ch.ID(i)
				_ = ch.TC(i)
			}
		}
	})
}
