package hilbert

import (
	"math/rand"
	"testing"

	"s3cbcd/internal/bitkey"
)

// enumerate all indices of a small curve and decode them.
func decodeAll(t *testing.T, c *Curve) [][]uint32 {
	t.Helper()
	total := uint(c.IndexBits())
	if total > 20 {
		t.Fatalf("decodeAll: curve too large (%d bits)", total)
	}
	n := 1 << total
	pts := make([][]uint32, n)
	for i := 0; i < n; i++ {
		pt := make([]uint32, c.Dims())
		c.Decode(bitkey.FromUint64(uint64(i)), pt)
		pts[i] = pt
	}
	return pts
}

func TestEncodeDecodeRoundTripSmall(t *testing.T) {
	configs := [][2]int{{2, 4}, {3, 3}, {4, 3}, {5, 2}, {1, 8}, {7, 2}}
	for _, cfg := range configs {
		c := MustNew(cfg[0], cfg[1])
		pts := decodeAll(t, c)
		seen := make(map[string]bool, len(pts))
		for i, pt := range pts {
			h := c.Encode(pt)
			if h.Uint64() != uint64(i) || h.BitLen() > 64 {
				t.Fatalf("D=%d K=%d: Encode(Decode(%d)) = %v", cfg[0], cfg[1], i, h)
			}
			key := ""
			for _, v := range pt {
				key += string(rune(v)) + ","
			}
			if seen[key] {
				t.Fatalf("D=%d K=%d: point %v visited twice", cfg[0], cfg[1], pt)
			}
			seen[key] = true
		}
	}
}

// TestAdjacency is the defining Hilbert property: consecutive indices map
// to grid cells at L1 distance exactly 1.
func TestAdjacency(t *testing.T) {
	configs := [][2]int{{2, 5}, {3, 3}, {4, 3}, {5, 2}, {6, 2}}
	for _, cfg := range configs {
		c := MustNew(cfg[0], cfg[1])
		pts := decodeAll(t, c)
		for i := 1; i < len(pts); i++ {
			dist := 0
			for j := range pts[i] {
				d := int(pts[i][j]) - int(pts[i-1][j])
				if d < 0 {
					d = -d
				}
				dist += d
			}
			if dist != 1 {
				t.Fatalf("D=%d K=%d: cells %d->%d not adjacent: %v -> %v",
					cfg[0], cfg[1], i-1, i, pts[i-1], pts[i])
			}
		}
	}
}

func TestEncodeDecodeRoundTripLarge(t *testing.T) {
	// The paper's configuration: D=20, K=8 (160-bit indices).
	c := MustNew(20, 8)
	r := rand.New(rand.NewSource(7))
	pt := make([]uint32, 20)
	back := make([]uint32, 20)
	for i := 0; i < 2000; i++ {
		for j := range pt {
			pt[j] = uint32(r.Intn(256))
		}
		h := c.Encode(pt)
		c.Decode(h, back)
		for j := range pt {
			if pt[j] != back[j] {
				t.Fatalf("round trip failed at %d: %v != %v", j, pt, back)
			}
		}
	}
}

func TestEncodeOrderingLocality(t *testing.T) {
	// Sanity check of the clustering property the index relies on: a small
	// hypercube of cells should land on few, long runs of the curve. We
	// just assert that runs of consecutive indices exist (i.e. the mapping
	// is not scattering everything), not a precise clustering bound.
	c := MustNew(3, 5)
	var keys []uint64
	pt := make([]uint32, 3)
	for x := uint32(8); x < 12; x++ {
		for y := uint32(8); y < 12; y++ {
			for z := uint32(8); z < 12; z++ {
				pt[0], pt[1], pt[2] = x, y, z
				keys = append(keys, c.Encode(pt).Uint64())
			}
		}
	}
	// Count maximal runs of consecutive integers after sorting.
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	runs := 1
	for i := 1; i < len(keys); i++ {
		if keys[i] != keys[i-1]+1 {
			runs++
		}
	}
	if runs >= len(keys) {
		t.Fatalf("no consecutive runs at all: %d runs for %d cells", runs, len(keys))
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 4); err == nil {
		t.Error("New(0,4) should fail")
	}
	if _, err := New(4, 0); err == nil {
		t.Error("New(4,0) should fail")
	}
	if _, err := New(65, 1); err == nil {
		t.Error("New(65,1) should fail")
	}
	if _, err := New(33, 8); err == nil {
		t.Error("New(33,8): 264 bits should fail")
	}
	if _, err := New(32, 8); err == nil {
		t.Error("New(32,8): 256 bits should fail (last interval end not representable)")
	}
	if _, err := New(51, 5); err != nil {
		t.Errorf("New(51,5): 255 bits should be accepted: %v", err)
	}
}

func TestEncodePanicsOnBadInput(t *testing.T) {
	c := MustNew(2, 4)
	assertPanics(t, func() { c.Encode([]uint32{1}) })
	assertPanics(t, func() { c.Encode([]uint32{1, 16}) })
	assertPanics(t, func() { c.Decode(bitkey.Zero, []uint32{0}) })
}

func assertPanics(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("expected panic")
		}
	}()
	f()
}

func TestGrayHelpers(t *testing.T) {
	for n := uint(1); n <= 16; n++ {
		for i := uint64(0); i < 1<<n; i++ {
			g := gray(i)
			if grayInverse(g, n) != i {
				t.Fatalf("grayInverse(gray(%d)) != %d for n=%d", i, i, n)
			}
		}
	}
	// Gray codes of consecutive integers differ in exactly one bit.
	for i := uint64(1); i < 1024; i++ {
		d := gray(i) ^ gray(i-1)
		if d&(d-1) != 0 || d == 0 {
			t.Fatalf("gray(%d)^gray(%d) = %b not a power of two", i, i-1, d)
		}
	}
}

func TestRotl(t *testing.T) {
	if got := rotl(0b0011, 1, 4); got != 0b0110 {
		t.Errorf("rotl = %b", got)
	}
	if got := rotl(0b1001, 1, 4); got != 0b0011 {
		t.Errorf("rotl wrap = %b", got)
	}
	if got := rotr(rotl(0b1011, 3, 5), 3, 5); got != 0b1011 {
		t.Errorf("rotr(rotl) = %b", got)
	}
	if got := rotl(0b101, 0, 3); got != 0b101 {
		t.Errorf("rotl by 0 = %b", got)
	}
}
