package bitkey

import (
	"testing"
	"testing/quick"
)

// TestQuickShiftInverse: for shifts that do not drop set bits, Shr undoes
// Shl and vice versa.
func TestQuickShiftInverse(t *testing.T) {
	f := func(w [Words]uint64, nRaw uint8) bool {
		k := Key(w)
		n := uint(nRaw) % 64
		// Mask the top n bits so Shl cannot overflow.
		masked := k.Shl(n).Shr(n)
		return masked.Shl(n).Shr(n) == masked
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickAddSubInverse: subtraction undoes addition (mod 2^256).
func TestQuickAddSubInverse(t *testing.T) {
	f := func(aw, bw [Words]uint64) bool {
		a, b := Key(aw), Key(bw)
		return a.Add(b).Sub(b) == a && a.Sub(b).Add(b) == a
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickBitRoundTrip: SetBit then Bit reads back, and clearing
// restores the original when the bit was clear.
func TestQuickBitRoundTrip(t *testing.T) {
	f := func(w [Words]uint64, iRaw uint16) bool {
		k := Key(w)
		i := uint(iRaw) % MaxBits
		set := k.SetBit(i, 1)
		if set.Bit(i) != 1 {
			return false
		}
		cleared := set.SetBit(i, 0)
		return cleared.Bit(i) == 0 && cleared == k.SetBit(i, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
