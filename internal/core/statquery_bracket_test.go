package core

// Regression test for the downward bracket walk's termination contract:
// when the walk alone exhausts maxThresholdIters, the search must still
// end on a FEASIBLE threshold and return a valid plan — a superset of
// the minimal block set with mass >= α — with the secant refinement
// skipped and the bracket still wider than thresholdTol. An early
// "iteration budget" check inside the walk would terminate on an
// infeasible threshold and silently under-cover Vα; this test pins the
// deliberate absence of that check.
//
// Realistic models cannot reach the regime (feasibility at t0/2^40
// needs astronomically many blocks, and edge blocks absorb the tails
// far earlier), so the test drives an adversarial model: a single chain
// of blocks toward the query cell whose mass decays geometrically with
// the subdivision level (ρ per split), every off-chain sibling carrying
// a mass below tFloor. Feasibility then begins only at the full-depth
// leaf mass ρ^48 ≈ 2.3e-14, which the walk needs ~45 halvings to reach
// from its t0 ≈ 0.25 start — past the 40-iteration budget.

import (
	"math"
	"reflect"
	"testing"

	"s3cbcd/internal/hilbert"
	"s3cbcd/internal/store"
)

const (
	chainDims  = 4
	chainOrder = 12   // side 4096: 48 index bits, so depth 48 is legal
	chainRho   = 0.52 // per-split mass of the block containing the query
	chainOff   = 1e-30
	chainQVal  = 100.0 // query component (same value in every dimension)
	chainAlpha = 1e-14 // just below the leaf mass 0.52^48 ≈ 2.28e-14
)

// chainModel is the adversarial distortion model: the component interval
// containing the (shifted) query point has mass ρ^s, where s is the
// number of binary splits that produced it; every other interval has
// mass below tFloor, so the partition tree degenerates to one chain and
// each threshold evaluation stays O(depth).
type chainModel struct{}

func (chainModel) Dims() int { return chainDims }

func (chainModel) ComponentMass(_ int, lo, hi float64) float64 {
	if lo > 0 || hi <= 0 {
		return chainOff // interval does not contain the query component
	}
	if math.IsInf(lo, -1) && math.IsInf(hi, 1) {
		return 1 // unsplit root interval
	}
	w := hi - lo
	if math.IsInf(lo, -1) {
		// Block starts at the grid edge (blockMass extended it to -Inf):
		// its raw width is the upper bound plus the query offset.
		w = hi + chainQVal + 0.5
	}
	s := math.Round(math.Log2(float64(uint32(1)<<chainOrder) / w))
	return math.Pow(chainRho, s)
}

func TestBracketWalkBudgetExhaustionStaysFeasible(t *testing.T) {
	curve := hilbert.MustNew(chainDims, chainOrder)
	q := []byte{chainQVal, chainQVal, chainQVal, chainQVal}
	// A record in the query's own unit cell plus decoys elsewhere: the
	// returned superset plan must retrieve the in-cell record.
	recs := []store.Record{
		{FP: append([]byte(nil), q...), ID: 1, TC: 10},
		{FP: []byte{7, 7, 7, 7}, ID: 2, TC: 20},
		{FP: []byte{200, 13, 90, 250}, ID: 3, TC: 30},
	}
	db, err := store.Build(curve, recs)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := NewIndex(db, curve.IndexBits()) // full depth: leaves are unit cells
	if err != nil {
		t.Fatal(err)
	}
	sq := StatQuery{Alpha: chainAlpha, Model: chainModel{}}

	plan, err := ix.PlanStat(q, sq)
	if err != nil {
		t.Fatal(err)
	}
	// The regime this test exists for: the walk alone blew the budget.
	if plan.FilterIters <= maxThresholdIters {
		t.Fatalf("walk used only %d evaluations (budget %d); the adversarial model no longer "+
			"exercises budget exhaustion", plan.FilterIters, maxThresholdIters)
	}
	// Termination contract: the plan is still feasible (mass >= α) at a
	// threshold above the floor — the walk ended on the first feasible
	// threshold, not on an arbitrary budget cut.
	if plan.Mass < sq.Alpha {
		t.Errorf("plan mass %g below alpha %g: the walk terminated infeasible", plan.Mass, sq.Alpha)
	}
	if plan.Threshold <= tFloor {
		t.Errorf("walk fell through to the floor threshold %g; feasibility begins at %g",
			plan.Threshold, math.Pow(chainRho, float64(curve.IndexBits())))
	}
	if plan.Blocks == 0 || len(plan.Intervals) == 0 {
		t.Errorf("feasible plan selected no blocks: %+v", plan)
	}

	// Superset validity: the plan must cover the query's own cell.
	ms, _, err := ix.SearchStat(q, sq)
	if err != nil {
		t.Fatal(err)
	}
	foundSelf := false
	for _, m := range ms {
		if m.ID == 1 {
			foundSelf = true
		}
	}
	if !foundSelf {
		t.Errorf("superset plan missed the record in the query's own cell (matches %+v)", ms)
	}

	// The frontier planner and the legacy reference agree bit for bit in
	// this regime too (their walks run the identical threshold sequence).
	legacy, err := ix.PlanStatLegacy(q, sq)
	if err != nil {
		t.Fatal(err)
	}
	fp, lp := plan, legacy
	fp.DescentNodes, lp.DescentNodes = 0, 0
	if !reflect.DeepEqual(fp, lp) {
		t.Errorf("frontier plan differs from legacy under budget exhaustion:\n got %+v\nwant %+v", fp, lp)
	}
}
