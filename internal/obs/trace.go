package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// Trace is the per-query execution record threaded through a search via
// its context. Since PR 10 it is a span tree rather than a flat stage
// list: every span carries a parent link, a start offset, a duration and
// a small set of string annotations, so a distributed query renders as
// one tree — the router's admission and per-backend attempts at the top,
// each backend's plan → refine stage split grafted underneath (see
// AttachRemote). The work counters the paper's evaluation is phrased in
// (partition-tree nodes descended, p-blocks selected, candidate records
// refined, segments visited) aggregate fleet-wide across grafts.
//
// A nil *Trace is the disabled state: every method no-ops, FromContext
// returns nil for untraced contexts, and the instrumentation points are
// written so the disabled path performs no allocation — tracing off
// costs one context lookup and a few predictable branches. Span methods
// take fixed arguments (no variadics) so call sites with a nil trace
// build nothing.
//
// Span records come from the orchestrating goroutine of a query or its
// attempt goroutines (the span list is mutex-guarded); the work counters
// are atomic so concurrent shard/segment refinement workers can add to a
// shared trace.
type Trace struct {
	t0      time.Time
	traceID uint64
	parent  uint64 // remote parent span id; 0 for a root trace
	depth   uint8  // propagation hops from the root trace

	mu      sync.Mutex
	name    string
	errMsg  string
	spans   []span
	rootAnn []annotation
	remote  []remoteGraft
	dropped int64

	descentNodes atomic.Int64
	blocks       atomic.Int64
	candidates   atomic.Int64
	segments     atomic.Int64
}

// SpanID names one span within its trace. IDs are local to the process
// (1-based creation order); 0 is the invalid/none id, which every span
// method treats as "attach to the trace root" (Annotate) or no-op
// (EndSpan). Cross-process identity is never needed: remote subtrees are
// grafted by response position, not by id.
type SpanID uint64

type annotation struct{ key, val string }

type span struct {
	name   string
	parent SpanID
	start  time.Duration // offset from trace start
	dur    time.Duration // < 0 while the span is open
	stage  bool          // renders in the legacy flat Stages list
	ann    []annotation
}

// remoteGraft is a backend's in-band trace report waiting to be rendered
// as a subtree under the local attempt span that fetched it.
type remoteGraft struct {
	under SpanID
	rep   TraceReport
}

// maxTraceSpans bounds one trace's span list: a retry storm or a
// pathological fan-out must not let a single traced query grow without
// bound. Past the cap spans are counted (droppedSpans) and discarded.
const maxTraceSpans = 512

// Package-wide tracing health counters, exported as s3_trace_* families
// by TraceStore.RegisterMetrics. Globals rather than per-trace fields so
// the untraced hot path never touches them and a registry can render
// them without holding traces alive.
var (
	spansStarted     atomic.Int64
	spansDropped     atomic.Int64
	assemblyFailures atomic.Int64
)

// idState drives trace-id generation: a splitmix64 counter seeded once
// per process. Ids only need to be unique-enough to correlate log lines
// and debug-store entries; grafting never keys on them.
var idState atomic.Uint64

func init() {
	idState.Store(uint64(time.Now().UnixNano()) ^ uint64(os.Getpid())<<32)
}

func randID() uint64 {
	for {
		if id := splitmix64(idState.Add(splitmix64Gamma)); id != 0 {
			return id
		}
	}
}

// NewTrace returns an armed root trace starting now, with a fresh trace
// id.
func NewTrace() *Trace { return &Trace{t0: time.Now(), traceID: randID()} }

// NewTraceFrom returns an armed trace continuing the remote trace
// described by sc (as decoded from an X-S3-Trace header): it shares the
// caller's trace id, remembers the remote parent span and sits one
// propagation hop deeper.
func NewTraceFrom(sc SpanContext) *Trace {
	if sc.TraceID == 0 {
		return NewTrace()
	}
	return &Trace{t0: time.Now(), traceID: sc.TraceID, parent: sc.SpanID, depth: sc.Depth}
}

type traceKey struct{}

// WithTrace arms ctx with tr: instrumentation points downstream record
// into it.
func WithTrace(ctx context.Context, tr *Trace) context.Context {
	return context.WithValue(ctx, traceKey{}, tr)
}

// FromContext returns the context's trace, or nil when the query is not
// traced. The lookup allocates nothing.
func FromContext(ctx context.Context) *Trace {
	tr, _ := ctx.Value(traceKey{}).(*Trace)
	return tr
}

// TraceID returns the trace's 64-bit id (0 for nil).
func (t *Trace) TraceID() uint64 {
	if t == nil {
		return 0
	}
	return t.traceID
}

// SetName names the trace root span (the service + route, by
// convention). Last call wins.
func (t *Trace) SetName(name string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.name = name
	t.mu.Unlock()
}

// SetError marks the whole trace failed. The first recorded error is
// kept — it is the one that determined the response.
func (t *Trace) SetError(msg string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if t.errMsg == "" {
		t.errMsg = msg
	}
	t.mu.Unlock()
}

// Propagate returns the SpanContext to send downstream for work done
// under span, and whether to send it at all: propagation stops (returns
// false) when the trace is nil or another hop would exceed
// MaxTraceDepth — the depth-bomb guard for routers routing to routers.
func (t *Trace) Propagate(span SpanID) (SpanContext, bool) {
	if t == nil || t.depth >= MaxTraceDepth {
		return SpanContext{}, false
	}
	return SpanContext{TraceID: t.traceID, SpanID: uint64(span), Sampled: true, Depth: t.depth + 1}, true
}

// StartSpan opens a span under parent (0 = the trace root) and returns
// its id. A full trace drops the span and returns 0, which EndSpan and
// Annotate ignore.
func (t *Trace) StartSpan(name string, parent SpanID) SpanID {
	if t == nil {
		return 0
	}
	return t.addSpan(name, parent, time.Since(t.t0), -1, false)
}

// EndSpan closes an open span. Closing id 0 (the root, or a dropped
// span) is a no-op: the root closes at Report time.
func (t *Trace) EndSpan(id SpanID) {
	if t == nil || id == 0 {
		return
	}
	now := time.Since(t.t0)
	t.mu.Lock()
	if i := int(id) - 1; i < len(t.spans) && t.spans[i].dur < 0 {
		t.spans[i].dur = now - t.spans[i].start
	}
	t.mu.Unlock()
}

// EndAbandoned closes span id with an outcome=abandoned annotation —
// but only if it is still open. A span whose owner already recorded its
// own ending (and a more specific outcome) keeps it; the caller uses
// this to sweep up in-flight work it is walking away from without
// racing the workers to the verdict.
func (t *Trace) EndAbandoned(id SpanID) {
	if t == nil || id == 0 {
		return
	}
	now := time.Since(t.t0)
	t.mu.Lock()
	if i := int(id) - 1; i < len(t.spans) && t.spans[i].dur < 0 {
		t.spans[i].ann = append(t.spans[i].ann, annotation{key: "outcome", val: "abandoned"})
		t.spans[i].dur = now - t.spans[i].start
	}
	t.mu.Unlock()
}

// SpanSince records a completed span under parent that began at start
// and ends now, returning its id.
func (t *Trace) SpanSince(name string, parent SpanID, start time.Time) SpanID {
	if t == nil {
		return 0
	}
	return t.addSpan(name, parent, start.Sub(t.t0), time.Since(start), false)
}

// StageSince appends a pipeline stage that began at start and ends now:
// a root-level span that additionally renders in the legacy flat Stages
// list. Offsets are relative to the trace start, so stages from nested
// calls line up on one timeline. The returned id lets call sites
// annotate the stage (guard the annotation build with a nil check).
func (t *Trace) StageSince(name string, start time.Time) SpanID {
	if t == nil {
		return 0
	}
	return t.addSpan(name, 0, start.Sub(t.t0), time.Since(start), true)
}

func (t *Trace) addSpan(name string, parent SpanID, start, dur time.Duration, stage bool) SpanID {
	spansStarted.Add(1)
	t.mu.Lock()
	if len(t.spans) >= maxTraceSpans {
		t.dropped++
		t.mu.Unlock()
		spansDropped.Add(1)
		return 0
	}
	t.spans = append(t.spans, span{name: name, parent: parent, start: start, dur: dur, stage: stage})
	id := SpanID(len(t.spans))
	t.mu.Unlock()
	return id
}

// Annotate attaches a key/value pair to a span (id 0 annotates the
// trace root). Call sites on hot paths must guard the value build with
// a nil check — this method cannot un-allocate an already-built string.
func (t *Trace) Annotate(id SpanID, key, val string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if id == 0 {
		t.rootAnn = append(t.rootAnn, annotation{key: key, val: val})
	} else if i := int(id) - 1; i < len(t.spans) {
		t.spans[i].ann = append(t.spans[i].ann, annotation{key: key, val: val})
	}
	t.mu.Unlock()
}

// AttachRemote grafts a downstream process's trace report (the raw
// "trace" JSON from a sampled backend response) under the local span
// that carried the request. The remote tree renders as that span's
// child, re-based onto the local timeline, and the remote work counters
// roll up into this trace so root totals are fleet-wide. Malformed
// reports count as assembly failures and graft an error placeholder —
// an attempt whose trace was torn should be visible, not silent.
func (t *Trace) AttachRemote(under SpanID, raw []byte) error {
	if t == nil {
		return nil
	}
	var rep TraceReport
	if err := json.Unmarshal(raw, &rep); err != nil {
		assemblyFailures.Add(1)
		t.mu.Lock()
		t.remote = append(t.remote, remoteGraft{under: under, rep: TraceReport{Name: "remote", Error: fmt.Sprintf("trace assembly: %v", err)}})
		t.mu.Unlock()
		return err
	}
	t.descentNodes.Add(rep.DescentNodes)
	t.blocks.Add(rep.Blocks)
	t.candidates.Add(rep.Candidates)
	t.segments.Add(rep.Segments)
	t.mu.Lock()
	t.remote = append(t.remote, remoteGraft{under: under, rep: rep})
	t.mu.Unlock()
	return nil
}

// AddDescentNodes accumulates partition-tree nodes visited by planning.
func (t *Trace) AddDescentNodes(n int64) {
	if t != nil {
		t.descentNodes.Add(n)
	}
}

// AddBlocks accumulates p-blocks selected by plans.
func (t *Trace) AddBlocks(n int64) {
	if t != nil {
		t.blocks.Add(n)
	}
}

// AddCandidates accumulates candidate records scanned by refinement.
func (t *Trace) AddCandidates(n int64) {
	if t != nil {
		t.candidates.Add(n)
	}
}

// AddSegments accumulates segments (or shards) visited by refinement.
func (t *Trace) AddSegments(n int64) {
	if t != nil {
		t.segments.Add(n)
	}
}

// StageReport is one stage of a trace report. Times are microseconds
// from the trace start (Start) and stage duration (Micros).
type StageReport struct {
	Name        string `json:"name"`
	StartMicros int64  `json:"startMicros"`
	Micros      int64  `json:"micros"`
}

// SpanReport is one span of an assembled trace tree. Children are
// nested, so parentage is the tree shape; ids do not appear. Remote
// subtrees carry their own Service name.
type SpanReport struct {
	Name        string            `json:"name"`
	Service     string            `json:"service,omitempty"`
	StartMicros int64             `json:"startMicros"`
	Micros      int64             `json:"micros"`
	Annotations map[string]string `json:"annotations,omitempty"`
	Error       string            `json:"error,omitempty"`
	Children    []SpanReport      `json:"children,omitempty"`
}

// TraceReport is the JSON-marshalable snapshot of a trace, attached to
// HTTP responses for traced queries. Spans is the assembled tree (root
// children); Stages remains the legacy flat pipeline-stage list. The
// work counters are fleet-wide totals once remote reports are attached.
type TraceReport struct {
	TraceID      string            `json:"traceId,omitempty"`
	Name         string            `json:"name,omitempty"`
	TotalMicros  int64             `json:"totalMicros"`
	Stages       []StageReport     `json:"stages"`
	Spans        []SpanReport      `json:"spans,omitempty"`
	Annotations  map[string]string `json:"annotations,omitempty"`
	Error        string            `json:"error,omitempty"`
	DroppedSpans int64             `json:"droppedSpans,omitempty"`
	DescentNodes int64             `json:"descentNodes"`
	Blocks       int64             `json:"blocks"`
	Candidates   int64             `json:"candidates"`
	Segments     int64             `json:"segments,omitempty"`
}

// Report snapshots the trace: total time runs from NewTrace to this
// call, open spans are reported as still running up to now, and remote
// grafts render as children of the spans that fetched them.
func (t *Trace) Report() TraceReport {
	if t == nil {
		return TraceReport{}
	}
	now := time.Since(t.t0)
	r := TraceReport{
		TotalMicros:  now.Microseconds(),
		DescentNodes: t.descentNodes.Load(),
		Blocks:       t.blocks.Load(),
		Candidates:   t.candidates.Load(),
		Segments:     t.segments.Load(),
	}
	if t.traceID != 0 {
		r.TraceID = fmt.Sprintf("%016x", t.traceID)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	r.Name = t.name
	r.Error = t.errMsg
	r.DroppedSpans = t.dropped
	r.Annotations = annotationMap(t.rootAnn)
	for _, s := range t.spans {
		if !s.stage {
			continue
		}
		r.Stages = append(r.Stages, StageReport{
			Name:        s.name,
			StartMicros: s.start.Microseconds(),
			Micros:      s.dur.Microseconds(),
		})
	}
	// Children always follow their parents in creation order, so one
	// forward pass builds the tree bottom-up into per-span node slots,
	// then a second pass hangs each node on its parent. Nodes are
	// attached in reverse so a parent's Children slice is complete
	// before the parent itself is attached to its own parent.
	nodes := make([]SpanReport, len(t.spans))
	for i, s := range t.spans {
		dur := s.dur
		if dur < 0 {
			dur = now - s.start
		}
		nodes[i] = SpanReport{
			Name:        s.name,
			StartMicros: s.start.Microseconds(),
			Micros:      dur.Microseconds(),
			Annotations: annotationMap(s.ann),
		}
	}
	for _, g := range t.remote {
		sub := remoteSubtree(g.rep)
		if i := int(g.under) - 1; i >= 0 && i < len(nodes) {
			sub = rebase(sub, nodes[i].StartMicros)
			nodes[i].Children = append(nodes[i].Children, sub)
		} else {
			sub = rebase(sub, 0)
			r.Spans = append(r.Spans, sub)
		}
	}
	for i := len(t.spans) - 1; i >= 0; i-- {
		p := int(t.spans[i].parent) - 1
		if p >= 0 && p < i {
			// Prepend: reverse attachment order restored to creation order.
			nodes[p].Children = append([]SpanReport{nodes[i]}, nodes[p].Children...)
		}
	}
	for i, s := range t.spans {
		if int(s.parent) == 0 {
			r.Spans = append(r.Spans, nodes[i])
		}
	}
	return r
}

func annotationMap(ann []annotation) map[string]string {
	if len(ann) == 0 {
		return nil
	}
	m := make(map[string]string, len(ann))
	for _, a := range ann {
		m[a.key] = a.val
	}
	return m
}

// remoteSubtree renders a grafted downstream report as one span whose
// children are the remote tree. The remote service's own root totals
// and error ride along; its span offsets stay on the remote clock until
// rebase shifts the whole subtree onto the local attempt's timeline
// (clock skew between processes is unknowable, so the attempt start is
// the honest anchor).
func remoteSubtree(rep TraceReport) SpanReport {
	name := rep.Name
	if name == "" {
		name = "remote"
	}
	sub := SpanReport{
		Name:        name,
		Service:     "remote",
		Micros:      rep.TotalMicros,
		Annotations: rep.Annotations,
		Error:       rep.Error,
		Children:    rep.Spans,
	}
	if rep.Candidates != 0 || rep.Blocks != 0 || rep.DescentNodes != 0 {
		if sub.Annotations == nil {
			sub.Annotations = make(map[string]string, 3)
		}
		sub.Annotations["descentNodes"] = fmt.Sprintf("%d", rep.DescentNodes)
		sub.Annotations["blocks"] = fmt.Sprintf("%d", rep.Blocks)
		sub.Annotations["candidates"] = fmt.Sprintf("%d", rep.Candidates)
	}
	return sub
}

// rebase shifts a subtree's start offsets by off microseconds.
func rebase(n SpanReport, off int64) SpanReport {
	n.StartMicros += off
	for i := range n.Children {
		n.Children[i] = rebase(n.Children[i], off)
	}
	return n
}
