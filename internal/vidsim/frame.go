// Package vidsim is the video substrate of the reproduction. The paper
// evaluates on the INA SNC archive (tens of thousands of hours of MPEG1
// television); that corpus is proprietary, so vidsim generates procedural
// grayscale video with the statistical structure the paper relies on:
// shots with persistent textured backgrounds (interest points detected
// many times across key-frames) and moving high-contrast objects (points
// detected once), separated by hard cuts that drive the key-frame
// detector. It also implements the five transformations studied in the
// paper's experiments (Figure 4): resize, vertical shift, gamma, contrast
// and Gaussian noise addition.
package vidsim

import "fmt"

// Frame is a grayscale image with float32 intensities in [0, 255].
// Pixels are stored row-major.
type Frame struct {
	W, H int
	Pix  []float32
}

// NewFrame allocates a zeroed (black) frame. It panics on non-positive
// dimensions.
func NewFrame(w, h int) *Frame {
	if w < 1 || h < 1 {
		panic(fmt.Sprintf("vidsim: invalid frame size %dx%d", w, h))
	}
	return &Frame{W: w, H: h, Pix: make([]float32, w*h)}
}

// At returns the intensity at (x, y). Out-of-bounds coordinates are
// clamped to the nearest edge pixel (replicate padding), which is what the
// derivative filters in the fingerprint extractor expect.
func (f *Frame) At(x, y int) float32 {
	if x < 0 {
		x = 0
	} else if x >= f.W {
		x = f.W - 1
	}
	if y < 0 {
		y = 0
	} else if y >= f.H {
		y = f.H - 1
	}
	return f.Pix[y*f.W+x]
}

// Set stores v at (x, y). Out-of-bounds coordinates are ignored.
func (f *Frame) Set(x, y int, v float32) {
	if x < 0 || x >= f.W || y < 0 || y >= f.H {
		return
	}
	f.Pix[y*f.W+x] = v
}

// Clone returns a deep copy of f.
func (f *Frame) Clone() *Frame {
	g := NewFrame(f.W, f.H)
	copy(g.Pix, f.Pix)
	return g
}

// Bilinear samples f at real coordinates (x, y) with bilinear
// interpolation and replicate padding.
func (f *Frame) Bilinear(x, y float64) float32 {
	x0 := int(x)
	y0 := int(y)
	if x < 0 {
		x0 = -1
	}
	if y < 0 {
		y0 = -1
	}
	fx := float32(x - float64(x0))
	fy := float32(y - float64(y0))
	v00 := f.At(x0, y0)
	v10 := f.At(x0+1, y0)
	v01 := f.At(x0, y0+1)
	v11 := f.At(x0+1, y0+1)
	top := v00 + (v10-v00)*fx
	bot := v01 + (v11-v01)*fx
	return top + (bot-top)*fy
}

// clamp255 restricts v to the displayable [0, 255] range.
func clamp255(v float32) float32 {
	if v < 0 {
		return 0
	}
	if v > 255 {
		return 255
	}
	return v
}

// Sequence is an ordered list of frames with a nominal frame rate used to
// convert frame indices to time codes.
type Sequence struct {
	Frames []*Frame
	FPS    int
}

// Len returns the number of frames.
func (s *Sequence) Len() int { return len(s.Frames) }

// MeanAbsDiff returns the mean absolute pixel difference between frames a
// and b — the "intensity of motion" the key-frame detector is built on.
// The frames must have identical dimensions.
func MeanAbsDiff(a, b *Frame) float64 {
	if a.W != b.W || a.H != b.H {
		panic(fmt.Sprintf("vidsim: MeanAbsDiff on %dx%d vs %dx%d", a.W, a.H, b.W, b.H))
	}
	sum := 0.0
	for i := range a.Pix {
		d := float64(a.Pix[i] - b.Pix[i])
		if d < 0 {
			d = -d
		}
		sum += d
	}
	return sum / float64(len(a.Pix))
}
