//go:build race

package s3

// raceEnabled reports whether this binary was built with -race, whose
// instrumentation allocates and invalidates allocation-count tests.
const raceEnabled = true
