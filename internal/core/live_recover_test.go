package core

// Crash-recovery property of the live index's manifest commit, in the
// style of store/failure_test.go: the newest manifest file is truncated
// at every possible byte (simulating a torn write at any point of a
// commit) and the index is reopened each time. Recovery must always
// succeed and always yield exactly the previous committed snapshot —
// never a partial state, never an error.

import (
	"context"
	"math"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"s3cbcd/internal/store"
)

// liveRecordSet returns the (ID, TC) multiset visible in the index via a
// whole-space range query.
func liveRecordSet(t *testing.T, li *LiveIndex) map[[2]uint32]int {
	t.Helper()
	diag := math.Sqrt(float64(liveTestDims)) * 32
	center := make([]byte, liveTestDims)
	for i := range center {
		center[i] = 16
	}
	ms, _, err := li.SearchRange(context.Background(), center, diag)
	if err != nil {
		t.Fatal(err)
	}
	set := make(map[[2]uint32]int)
	for _, m := range ms {
		set[[2]uint32{m.ID, m.TC}]++
	}
	return set
}

func copyDir(t *testing.T, src, dst string) {
	t.Helper()
	ents, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

func TestLiveIndexRecoversFromTornManifestCommit(t *testing.T) {
	master := t.TempDir()
	// Two controlled commits: no auto-seal, no compaction, one Flush per
	// state, so exactly two manifests exist — S1's and S2's.
	li, err := OpenLiveIndex(liveTestCurve(), master, LiveOptions{
		Depth:           liveTestDepth,
		MemtableRecords: 1 << 20,
		CompactSegments: 1 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	batch1 := []store.Record{
		{FP: []byte{1, 2, 3, 4}, ID: 1, TC: 10},
		{FP: []byte{5, 6, 7, 8}, ID: 1, TC: 11},
		{FP: []byte{9, 10, 11, 12}, ID: 2, TC: 20},
	}
	if err := li.Ingest(batch1); err != nil {
		t.Fatal(err)
	}
	if err := li.Flush(); err != nil { // commit: state S1
		t.Fatal(err)
	}
	batch2 := []store.Record{
		{FP: []byte{13, 14, 15, 16}, ID: 3, TC: 30},
		{FP: []byte{17, 18, 19, 20}, ID: 3, TC: 31},
	}
	if err := li.Ingest(batch2); err != nil {
		t.Fatal(err)
	}
	if err := li.Flush(); err != nil { // commit: state S2
		t.Fatal(err)
	}
	s2 := liveRecordSet(t, li)
	if err := li.Close(); err != nil {
		t.Fatal(err)
	}

	s1 := map[[2]uint32]int{{1, 10}: 1, {1, 11}: 1, {2, 20}: 1}

	manifests, err := filepath.Glob(filepath.Join(master, "MANIFEST-*"))
	if err != nil || len(manifests) != 2 {
		t.Fatalf("expected 2 manifests, found %v (err %v)", manifests, err)
	}
	sort.Strings(manifests) // fixed-width hex: lexicographic = numeric
	newest := manifests[1]
	full, err := os.ReadFile(newest)
	if err != nil {
		t.Fatal(err)
	}

	check := func(cut int, want map[[2]uint32]int, label string) {
		dir := t.TempDir()
		copyDir(t, master, dir)
		if err := os.WriteFile(filepath.Join(dir, filepath.Base(newest)), full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		re, err := OpenLiveIndex(liveTestCurve(), dir, LiveOptions{Depth: liveTestDepth})
		if err != nil {
			t.Fatalf("%s: reopen failed: %v", label, err)
		}
		defer re.Close()
		got := liveRecordSet(t, re)
		if len(got) != len(want) {
			t.Fatalf("%s: recovered %d records, want %d", label, len(got), len(want))
		}
		for k, n := range want {
			if got[k] != n {
				t.Fatalf("%s: record id=%d tc=%d count %d, want %d", label, k[0], k[1], got[k], n)
			}
		}
	}

	// A torn newest manifest (any strict prefix) must recover S1; the
	// complete file is a finished commit and recovers S2.
	for cut := 0; cut < len(full); cut++ {
		check(cut, s1, "torn commit")
	}
	check(len(full), s2, "complete commit")

	// A crash before the rename leaves only a .tmp, which is ignored.
	dir := t.TempDir()
	copyDir(t, master, dir)
	if err := os.Rename(filepath.Join(dir, filepath.Base(newest)),
		filepath.Join(dir, filepath.Base(newest)+".tmp")); err != nil {
		t.Fatal(err)
	}
	re, err := OpenLiveIndex(liveTestCurve(), dir, LiveOptions{Depth: liveTestDepth})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	got := liveRecordSet(t, re)
	if len(got) != len(s1) {
		t.Fatalf("tmp-only commit: recovered %d records, want %d", len(got), len(s1))
	}
}

// TestCompactionKeepsPredecessorRecoverable is the regression test for
// the dead-fallback bug: compaction used to unlink its input segment
// files at commit, so the retained predecessor manifest — the recovery
// fallback against a torn newest commit — referenced files that no
// longer existed, and a crash during the post-compaction commit lost
// committed data. Superseded files must survive until a later commit's
// GC observes that no retained manifest references them.
func TestCompactionKeepsPredecessorRecoverable(t *testing.T) {
	master := t.TempDir()
	li, err := OpenLiveIndex(liveTestCurve(), master, LiveOptions{
		Depth:           liveTestDepth,
		MemtableRecords: 1 << 20,
		CompactSegments: 1 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	batch1 := []store.Record{
		{FP: []byte{1, 2, 3, 4}, ID: 1, TC: 10},
		{FP: []byte{5, 6, 7, 8}, ID: 1, TC: 11},
		{FP: []byte{9, 10, 11, 12}, ID: 2, TC: 20},
	}
	batch2 := []store.Record{
		{FP: []byte{13, 14, 15, 16}, ID: 3, TC: 30},
		{FP: []byte{17, 18, 19, 20}, ID: 3, TC: 31},
	}
	if err := li.Ingest(batch1); err != nil {
		t.Fatal(err)
	}
	if err := li.Flush(); err != nil { // commit: state S1
		t.Fatal(err)
	}
	if err := li.Ingest(batch2); err != nil {
		t.Fatal(err)
	}
	if err := li.Flush(); err != nil { // commit: state S2
		t.Fatal(err)
	}
	inputs, err := filepath.Glob(filepath.Join(master, "seg-*.s3db"))
	if err != nil || len(inputs) != 2 {
		t.Fatalf("expected 2 sealed segment files, found %v (err %v)", inputs, err)
	}
	if err := li.Compact(); err != nil { // commit: state S3 (same records)
		t.Fatal(err)
	}
	want := liveRecordSet(t, li)
	// The compaction inputs are still referenced by the retained
	// predecessor manifest and must survive its commit.
	for _, f := range inputs {
		if _, err := os.Stat(f); err != nil {
			t.Fatalf("compaction input %s deleted at commit: %v", filepath.Base(f), err)
		}
	}
	if err := li.Close(); err != nil {
		t.Fatal(err)
	}

	manifests, err := filepath.Glob(filepath.Join(master, "MANIFEST-*"))
	if err != nil || len(manifests) != 2 {
		t.Fatalf("expected 2 manifests, found %v (err %v)", manifests, err)
	}
	sort.Strings(manifests)
	newest := manifests[1]
	full, err := os.ReadFile(newest)
	if err != nil {
		t.Fatal(err)
	}

	// A torn post-compaction manifest (any strict prefix) must fall back
	// to the pre-compaction snapshot — identical records here, since the
	// compaction changed layout, not content.
	for cut := 0; cut < len(full); cut += 7 {
		dir := t.TempDir()
		copyDir(t, master, dir)
		if err := os.WriteFile(filepath.Join(dir, filepath.Base(newest)), full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		re, err := OpenLiveIndex(liveTestCurve(), dir, LiveOptions{Depth: liveTestDepth})
		if err != nil {
			t.Fatalf("cut %d: reopen failed: %v", cut, err)
		}
		got := liveRecordSet(t, re)
		re.Close()
		if len(got) != len(want) {
			t.Fatalf("cut %d: recovered %d records, want %d", cut, len(got), len(want))
		}
		for k, n := range want {
			if got[k] != n {
				t.Fatalf("cut %d: record id=%d tc=%d count %d, want %d", cut, k[0], k[1], got[k], n)
			}
		}
	}

	// Once a later commit prunes the predecessor manifest, the GC must
	// collect the superseded input files (and an unreferenced orphan),
	// while the live merged segment survives.
	re, err := OpenLiveIndex(liveTestCurve(), master, LiveOptions{
		Depth:           liveTestDepth,
		MemtableRecords: 1 << 20,
		CompactSegments: 1 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	orphan := filepath.Join(master, store.SegmentFileName(1<<40))
	if err := os.WriteFile(orphan, []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := re.Ingest([]store.Record{{FP: []byte{21, 22, 23, 24}, ID: 4, TC: 40}}); err != nil {
		t.Fatal(err)
	}
	if err := re.Flush(); err != nil { // commit: prunes S2's manifest
		t.Fatal(err)
	}
	for _, f := range inputs {
		if _, err := os.Stat(f); err == nil {
			t.Fatalf("superseded segment %s not collected after pruning commit", filepath.Base(f))
		}
	}
	if _, err := os.Stat(orphan); err == nil {
		t.Fatal("orphan segment file not collected")
	}
	got := liveRecordSet(t, re)
	if len(got) != len(want)+1 {
		t.Fatalf("post-GC index lost records: %d, want %d", len(got), len(want)+1)
	}
}
