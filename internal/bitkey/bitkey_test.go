package bitkey

import (
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"
)

func toBig(k Key) *big.Int {
	v := new(big.Int)
	for i := 0; i < Words; i++ {
		v.Lsh(v, 64)
		v.Or(v, new(big.Int).SetUint64(k[i]))
	}
	return v
}

func fromBig(v *big.Int) Key {
	var k Key
	mask := new(big.Int).SetUint64(^uint64(0))
	t := new(big.Int).Set(v)
	for i := Words - 1; i >= 0; i-- {
		k[i] = new(big.Int).And(t, mask).Uint64()
		t.Rsh(t, 64)
	}
	return k
}

func randKey(r *rand.Rand) Key {
	var k Key
	for i := range k {
		k[i] = r.Uint64()
	}
	return k
}

func TestFromUint64RoundTrip(t *testing.T) {
	for _, v := range []uint64{0, 1, 42, 1 << 63, ^uint64(0)} {
		if got := FromUint64(v).Uint64(); got != v {
			t.Errorf("FromUint64(%d).Uint64() = %d", v, got)
		}
	}
}

func TestCmp(t *testing.T) {
	a := FromUint64(5)
	b := FromUint64(9)
	c := FromUint64(9).Shl(64)
	if a.Cmp(b) != -1 || b.Cmp(a) != 1 || a.Cmp(a) != 0 {
		t.Fatalf("small Cmp wrong")
	}
	if !b.Less(c) {
		t.Fatalf("expected %v < %v", b, c)
	}
}

func TestShiftAgainstBig(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	mod := new(big.Int).Lsh(big.NewInt(1), MaxBits)
	for i := 0; i < 500; i++ {
		k := randKey(r)
		n := uint(r.Intn(MaxBits + 10))
		wantL := new(big.Int).Lsh(toBig(k), n)
		wantL.Mod(wantL, mod)
		if got := toBig(k.Shl(n)); got.Cmp(wantL) != 0 {
			t.Fatalf("Shl(%v, %d) = %v, want %v", k, n, got, wantL)
		}
		wantR := new(big.Int).Rsh(toBig(k), n)
		if got := toBig(k.Shr(n)); got.Cmp(wantR) != 0 {
			t.Fatalf("Shr(%v, %d) = %v, want %v", k, n, got, wantR)
		}
	}
}

func TestAddSubAgainstBig(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	mod := new(big.Int).Lsh(big.NewInt(1), MaxBits)
	for i := 0; i < 500; i++ {
		a, b := randKey(r), randKey(r)
		sum := new(big.Int).Add(toBig(a), toBig(b))
		sum.Mod(sum, mod)
		if got := toBig(a.Add(b)); got.Cmp(sum) != 0 {
			t.Fatalf("Add mismatch")
		}
		diff := new(big.Int).Sub(toBig(a), toBig(b))
		diff.Mod(diff, mod)
		if diff.Sign() < 0 {
			diff.Add(diff, mod)
		}
		if got := toBig(a.Sub(b)); got.Cmp(diff) != 0 {
			t.Fatalf("Sub mismatch")
		}
	}
}

func TestBitSetBit(t *testing.T) {
	var k Key
	idx := []uint{0, 1, 63, 64, 100, 128, 255}
	for _, i := range idx {
		k = k.SetBit(i, 1)
	}
	for _, i := range idx {
		if k.Bit(i) != 1 {
			t.Fatalf("bit %d not set", i)
		}
	}
	for _, i := range idx {
		k = k.SetBit(i, 0)
	}
	if !k.IsZero() {
		t.Fatalf("expected zero after clearing, got %v", k)
	}
}

func TestBitPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic")
		}
	}()
	Zero.Bit(MaxBits)
}

func TestBitLen(t *testing.T) {
	if Zero.BitLen() != 0 {
		t.Fatalf("Zero.BitLen() = %d", Zero.BitLen())
	}
	if got := FromUint64(1).BitLen(); got != 1 {
		t.Fatalf("BitLen(1) = %d", got)
	}
	if got := FromUint64(1).Shl(200).BitLen(); got != 201 {
		t.Fatalf("BitLen(1<<200) = %d", got)
	}
}

func TestBytesRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for n := 1; n <= 32; n++ {
		k := randKey(r)
		// Mask to n bytes.
		if n < 32 {
			k = k.Shl(uint(256 - 8*n)).Shr(uint(256 - 8*n))
		}
		buf := make([]byte, n)
		k.PutBytes(buf, n)
		if got := FromBytes(buf, n); got != k {
			t.Fatalf("round trip n=%d: got %v want %v", n, got, k)
		}
	}
}

func TestBytesOrderingMatchesKeyOrdering(t *testing.T) {
	// Big-endian byte comparison must agree with numeric comparison;
	// the store relies on this when binary-searching serialized keys.
	f := func(aw, bw [Words]uint64) bool {
		a, b := Key(aw), Key(bw)
		var ab, bb [32]byte
		a.PutBytes(ab[:], 32)
		b.PutBytes(bb[:], 32)
		byteCmp := 0
		for i := range ab {
			if ab[i] != bb[i] {
				if ab[i] < bb[i] {
					byteCmp = -1
				} else {
					byteCmp = 1
				}
				break
			}
		}
		return byteCmp == a.Cmp(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestIncString(t *testing.T) {
	k := FromUint64(^uint64(0))
	k = k.Inc()
	if k.Uint64() != 0 || k[Words-2] != 1 {
		t.Fatalf("carry propagation failed: %v", k)
	}
	if s := FromUint64(255).String(); s != "0xff" {
		t.Fatalf("String = %q", s)
	}
	if s := Zero.String(); s != "0x0" {
		t.Fatalf("String(0) = %q", s)
	}
}

func TestXorOrAnd(t *testing.T) {
	f := func(aw, bw [Words]uint64) bool {
		a, b := Key(aw), Key(bw)
		x := a.Xor(b)
		return x.Xor(b) == a && a.Or(b).And(a) == a
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
