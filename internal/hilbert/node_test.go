package hilbert

import "testing"

// TestSplitNodeEnumeratesDescendBlocks expands the explicit node tree
// down to depth p and checks it produces exactly the blocks of Descend.
func TestSplitNodeEnumeratesDescendBlocks(t *testing.T) {
	configs := [][2]int{{2, 4}, {3, 3}, {4, 2}}
	for _, cfg := range configs {
		c := MustNew(cfg[0], cfg[1])
		for p := 1; p <= c.IndexBits(); p += 2 {
			want := collectBlocks(c, p, nil)
			var leaves []Node
			var expand func(n Node)
			expand = func(n Node) {
				if n.Bits == p {
					leaves = append(leaves, n)
					return
				}
				for _, ch := range c.SplitNode(n) {
					expand(ch)
				}
			}
			expand(c.RootNode())
			if len(leaves) != len(want) {
				t.Fatalf("D=%d K=%d p=%d: %d leaves, want %d", cfg[0], cfg[1], p, len(leaves), len(want))
			}
			for i, n := range leaves {
				iv := c.NodeInterval(n)
				if iv.Start != want[i].start || iv.End != want[i].end {
					t.Fatalf("leaf %d interval [%v,%v), want [%v,%v)", i, iv.Start, iv.End, want[i].start, want[i].end)
				}
				for j := range n.Lo {
					if n.Lo[j] != want[i].lo[j] || n.Hi[j] != want[i].hi[j] {
						t.Fatalf("leaf %d bounds differ at dim %d", i, j)
					}
				}
			}
		}
	}
}

func TestSplitNodeChildrenOwnBounds(t *testing.T) {
	c := MustNew(3, 3)
	root := c.RootNode()
	kids := c.SplitNode(root)
	kids[0].Lo[0] = 99
	if root.Lo[0] == 99 || kids[1].Lo[0] == 99 {
		t.Fatal("children alias bounds")
	}
}

func TestSplitNodePanicsAtMaxDepth(t *testing.T) {
	c := MustNew(2, 2)
	n := c.RootNode()
	for n.Bits < c.IndexBits() {
		n = c.SplitNode(n)[0]
	}
	assertPanics(t, func() { c.SplitNode(n) })
}
