package s3

// Router tail-latency benchmark: the scatter/gather coordinator in
// front of a two-group, two-replica s3serve deployment where exactly
// one replica is uniformly slow — the classic tail-at-scale setup that
// hedged requests exist for. The same query stream runs through a
// hedging-disabled router and a hedging-enabled one; per-query wall
// times give p50/p99 for both.
//
//	go test -run TestRouterBenchSweep -bench-router -timeout 30m .
//
// regenerates BENCH_router.json in the repository root. The test
// verifies, query by query, that the hedged and unhedged routers
// return byte-identical bodies (hedging must never change an answer),
// then gates on hedging cutting p99 by at least 2x — the same gate the
// CI smoke job asserts at a smaller corpus via -bench-router-records.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"testing"
	"time"

	"s3cbcd/internal/experiments"
	"s3cbcd/internal/fingerprint"
	"s3cbcd/internal/hilbert"
	"s3cbcd/internal/httpapi"
	"s3cbcd/internal/router"
	"s3cbcd/internal/store"
)

var (
	benchRouterFlag = flag.Bool("bench-router", false,
		"run the hedged vs unhedged router comparison and write BENCH_router.json")
	benchRouterRecords = flag.Int("bench-router-records", 100_000,
		"corpus size for -bench-router")
)

const (
	routerBenchQueries = 200
	routerBenchWarm    = 32
	// routerBenchSlow is the extra service time of the one slow replica.
	// It dwarfs the fast replicas' sub-millisecond latency, so the
	// unhedged p99 is pinned to it while the hedged p99 escapes via the
	// sibling.
	routerBenchSlow = 25 * time.Millisecond
)

// slowReplica delays every search before delegating: a replica that is
// up, healthy and correct — just uniformly slow (GC thrash, a cold
// page cache, an overloaded box).
func slowReplica(inner http.Handler, delay time.Duration) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasPrefix(r.URL.Path, "/search/") {
			time.Sleep(delay)
		}
		inner.ServeHTTP(w, r)
	})
}

// percentile is the nearest-rank percentile of a sorted duration slice.
func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(p*float64(len(sorted))+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

// metricValue scans a /metrics exposition for an exact family name and
// returns its value (0 when absent).
func metricValue(text, family string) float64 {
	sc := bufio.NewScanner(strings.NewReader(text))
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, family+" ") {
			continue
		}
		v, err := strconv.ParseFloat(strings.TrimPrefix(line, family+" "), 64)
		if err == nil {
			return v
		}
	}
	return 0
}

func TestRouterBenchSweep(t *testing.T) {
	if !*benchRouterFlag {
		t.Skip("pass -bench-router to run the router comparison")
	}
	n := *benchRouterRecords
	curve := hilbert.MustNew(fingerprint.D, 8)
	global, err := store.Build(curve, experiments.FPCorpus(n, 1))
	if err != nil {
		t.Fatal(err)
	}
	queries, _ := experiments.DistortedQueries(global, routerBenchQueries, shardBenchSigma, 2)

	// Two contiguous key-range groups, each with two replicas of the
	// same chunk DB; group 0's second replica is the slow one.
	cut := global.Len() / 2
	chunk := func(lo, hi int) *store.DB {
		recs := make([]store.Record, 0, hi-lo)
		for i := lo; i < hi; i++ {
			fp := make([]byte, len(global.FP(i)))
			copy(fp, global.FP(i))
			recs = append(recs, store.Record{FP: fp, ID: global.ID(i), TC: global.TC(i), X: global.X(i), Y: global.Y(i)})
		}
		return store.MustBuild(curve, recs)
	}
	var groups [][]string
	for g, bounds := range [][2]int{{0, cut}, {cut, global.Len()}} {
		db := chunk(bounds[0], bounds[1])
		grp := make([]string, 0, 2)
		for rep := 0; rep < 2; rep++ {
			api, err := httpapi.New(db, httpapi.Options{Shards: 2, Workers: 2})
			if err != nil {
				t.Fatal(err)
			}
			var h http.Handler = api
			if g == 0 && rep == 1 {
				h = slowReplica(api, routerBenchSlow)
			}
			srv := httptest.NewServer(h)
			t.Cleanup(srv.Close)
			grp = append(grp, srv.URL)
		}
		groups = append(groups, grp)
	}

	startRouter := func(opt router.Options) (*httptest.Server, *router.Router) {
		opt.Groups = groups
		opt.ProbeInterval = -1 // static healthy fixture; probes are noise here
		rt, err := router.New(opt)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(rt.Close)
		srv := httptest.NewServer(rt)
		t.Cleanup(srv.Close)
		return srv, rt
	}
	unhedged, _ := startRouter(router.Options{HedgeQuantile: -1})
	hedged, _ := startRouter(router.Options{}) // default quantile 0.9, HedgeMin 1ms

	bodies := make([][]byte, len(queries))
	for i, q := range queries {
		fp := make([]int, len(q))
		for j, b := range q {
			fp[j] = int(b)
		}
		raw, err := json.Marshal(map[string]interface{}{
			"fingerprint": fp, "alpha": shardBenchAlpha, "sigma": shardBenchSigma,
		})
		if err != nil {
			t.Fatal(err)
		}
		bodies[i] = raw
	}

	post := func(srv *httptest.Server, body []byte) []byte {
		resp, err := http.Post(srv.URL+"/search/statistical", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		if _, err := buf.ReadFrom(resp.Body); err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %s", resp.StatusCode, buf.String())
		}
		return buf.Bytes()
	}

	// Warm both routers: pages in the chunk structures and fills the
	// per-backend latency windows the hedge quantile reads.
	for i := 0; i < routerBenchWarm; i++ {
		post(unhedged, bodies[i%len(bodies)])
		post(hedged, bodies[i%len(bodies)])
	}

	run := func(srv *httptest.Server) ([]time.Duration, [][]byte) {
		lats := make([]time.Duration, len(bodies))
		outs := make([][]byte, len(bodies))
		for i, body := range bodies {
			t0 := time.Now()
			outs[i] = post(srv, body)
			lats[i] = time.Since(t0)
		}
		sort.Slice(lats, func(a, b int) bool { return lats[a] < lats[b] })
		return lats, outs
	}
	unhedgedLats, unhedgedOuts := run(unhedged)
	hedgedLats, hedgedOuts := run(hedged)

	// Hedging must be invisible in the answers: byte-identical bodies
	// for every query.
	for i := range bodies {
		if !bytes.Equal(unhedgedOuts[i], hedgedOuts[i]) {
			t.Fatalf("query %d: hedged body differs from unhedged:\n got %s\nwant %s",
				i, hedgedOuts[i], unhedgedOuts[i])
		}
	}

	uP50, uP99 := percentile(unhedgedLats, 0.50), percentile(unhedgedLats, 0.99)
	hP50, hP99 := percentile(hedgedLats, 0.50), percentile(hedgedLats, 0.99)
	factor := float64(uP99) / float64(hP99)

	resp, err := http.Get(hedged.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var mbuf bytes.Buffer
	if _, err := mbuf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	hedges := metricValue(mbuf.String(), "s3_router_hedges_total")
	hedgeWins := metricValue(mbuf.String(), "s3_router_hedge_wins_total")

	t.Logf("unhedged p50 %v p99 %v; hedged p50 %v p99 %v (p99 %.1fx better); hedges %.0f, wins %.0f",
		uP50, uP99, hP50, hP99, factor, hedges, hedgeWins)

	if factor < 2 {
		t.Errorf("hedged p99 %v is %.2fx better than unhedged %v, want >= 2x", hP99, factor, uP99)
	}
	if hedges == 0 || hedgeWins == 0 {
		t.Errorf("hedged router recorded %v hedges / %v wins; the slow replica should force both > 0", hedges, hedgeWins)
	}

	report := map[string]interface{}{
		"benchmark": "scatter/gather router: hedged vs unhedged p99 with one uniformly slow replica",
		"corpus": map[string]interface{}{
			"records":  n,
			"dims":     fingerprint.D,
			"queries":  len(queries),
			"groups":   2,
			"replicas": 2,
			"alpha":    shardBenchAlpha,
			"sigma":    shardBenchSigma,
		},
		"slow_replica_delay_ms": float64(routerBenchSlow) / float64(time.Millisecond),
		"host": map[string]interface{}{
			"num_cpu":    runtime.NumCPU(),
			"go_version": runtime.Version(),
		},
		"note": fmt.Sprintf("Two key-range groups x two s3serve replicas; group 0's second replica sleeps "+
			"%v before every search. Hedged and unhedged responses verified byte-identical for every query "+
			"in-run. Hedge delay is the min recent p90 across a group's replicas (HedgeMin 1ms floor). "+
			"Timings on a %d-core host.", routerBenchSlow, runtime.NumCPU()),
		"unhedged_p50_ms": float64(uP50) / float64(time.Millisecond),
		"unhedged_p99_ms": float64(uP99) / float64(time.Millisecond),
		"hedged_p50_ms":   float64(hP50) / float64(time.Millisecond),
		"hedged_p99_ms":   float64(hP99) / float64(time.Millisecond),
		"p99_factor":      factor,
		"hedges":          hedges,
		"hedge_wins":      hedgeWins,
	}
	raw, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_router.json", append(raw, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Log("wrote BENCH_router.json")
}
