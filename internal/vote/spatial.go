package vote

// Spatial extension of the voting strategy — the second future work the
// paper's conclusion announces: "we would like to extend the estimation
// step to the spatial positions of the interest points in order to
// improve the discriminance of the fingerprints". After the temporal
// offset b(id) is estimated, the spatial correspondence between the
// candidate's interest points and the referenced ones is fitted with a
// per-axis linear model x' = a·x + t (covering the paper's resize and
// shift transformations) using the same robust machinery; a vote then
// requires temporal AND spatial coherence.

import (
	"math"
	"sort"
)

// axisModel is x' = A·x + T for one image axis.
type axisModel struct {
	A, T float64
}

// eval returns the predicted candidate coordinate for a reference
// coordinate.
func (m axisModel) eval(x float64) float64 { return m.A*x + m.T }

// fitAxis robustly fits x' = a·x + t to correspondence pairs (ref, cand)
// with a Theil–Sen style estimator: the slope is the median of pairwise
// slopes, the intercept the median residual. Degenerate inputs (fewer
// than 2 pairs, or all references equal) fall back to a pure translation
// (a = 1).
func fitAxis(ref, cand []float64) axisModel {
	n := len(ref)
	if n == 0 {
		return axisModel{A: 1}
	}
	if n == 1 {
		return axisModel{A: 1, T: cand[0] - ref[0]}
	}
	var slopes []float64
	// Cap the pair enumeration: for large n a random-ish but
	// deterministic subset of pairs suffices for a median slope.
	step := 1
	if n > 60 {
		step = n / 60
	}
	for i := 0; i < n; i += step {
		for j := i + 1; j < n; j += step {
			dx := ref[j] - ref[i]
			if math.Abs(dx) < 1e-9 {
				continue
			}
			slopes = append(slopes, (cand[j]-cand[i])/dx)
		}
	}
	a := 1.0
	if len(slopes) > 0 {
		sort.Float64s(slopes)
		a = slopes[len(slopes)/2]
	}
	// Guard against absurd scales — video resizes live in a modest range,
	// and a wild slope estimate means the correspondences are incoherent.
	if a < 0.25 || a > 4 {
		a = 1
	}
	res := make([]float64, n)
	for i := range ref {
		res[i] = cand[i] - a*ref[i]
	}
	sort.Float64s(res)
	return axisModel{A: a, T: res[len(res)/2]}
}

// spatialObservation is one temporally coherent correspondence with
// positions on both sides.
type spatialObservation struct {
	refX, refY   float64
	candX, candY float64
}

// spatialVotes fits the two axis models on the temporally coherent
// correspondences and counts those whose position is predicted within
// tol pixels on both axes. Records from v1 database files carry no
// positions (all zeros); in that case spatial information is simply
// unavailable and every temporally coherent observation passes.
func spatialVotes(obs []spatialObservation, tol float64) (int, axisModel, axisModel) {
	if len(obs) == 0 {
		return 0, axisModel{A: 1}, axisModel{A: 1}
	}
	noPositions := true
	for _, o := range obs {
		if o.refX != 0 || o.refY != 0 {
			noPositions = false
			break
		}
	}
	if noPositions {
		return len(obs), axisModel{A: 1}, axisModel{A: 1}
	}
	refX := make([]float64, len(obs))
	refY := make([]float64, len(obs))
	candX := make([]float64, len(obs))
	candY := make([]float64, len(obs))
	for i, o := range obs {
		refX[i], refY[i] = o.refX, o.refY
		candX[i], candY[i] = o.candX, o.candY
	}
	mx := fitAxis(refX, candX)
	my := fitAxis(refY, candY)
	votes := 0
	for _, o := range obs {
		if math.Abs(mx.eval(o.refX)-o.candX) <= tol &&
			math.Abs(my.eval(o.refY)-o.candY) <= tol {
			votes++
		}
	}
	return votes, mx, my
}
