package fingerprint

import (
	"testing"

	"s3cbcd/internal/vidsim"
)

func TestExtractGlobalShape(t *testing.T) {
	gcfg := vidsim.DefaultConfig(61)
	gcfg.MinShot, gcfg.MaxShot = 20, 30
	seq := vidsim.Generate(gcfg, 120)
	locals := ExtractGlobal(seq, DefaultConfig())
	keys := Keyframes(seq, DefaultConfig().KeyframeSigma)
	if len(locals) != len(keys) {
		t.Fatalf("%d global fingerprints for %d key-frames", len(locals), len(keys))
	}
	for i, l := range locals {
		if int(l.TC) != keys[i] {
			t.Fatalf("fingerprint %d at tc %d, key-frame %d", i, l.TC, keys[i])
		}
		if l.X != float64(seq.Frames[0].W)/2 {
			t.Fatalf("global position not frame center: %v", l.X)
		}
	}
}

func TestGlobalDescriptorProperties(t *testing.T) {
	f := vidsim.Generate(vidsim.DefaultConfig(62), 1).Frames[0]
	fp := globalDescriptor(f)
	// Deterministic.
	if fp != globalDescriptor(f) {
		t.Fatal("not deterministic")
	}
	// Shifting the frame changes the histogram bins only mildly but
	// a contrast crush changes them a lot — the descriptor must respond.
	crushed := vidsim.Contrast{Factor: 0.3}.Apply(f)
	if d := fp.Distance(globalDescriptor(crushed)); d < 20 {
		t.Fatalf("contrast crush moved the descriptor only %v", d)
	}
	// A flat frame has zero gradients and concentrated histogram.
	flat := vidsim.NewFrame(32, 32)
	ffp := globalDescriptor(flat)
	if ffp[18] != 0 || ffp[19] != 0 {
		t.Fatalf("flat frame gradients: %d %d", ffp[18], ffp[19])
	}
	if ffp[0] == 0 {
		t.Fatal("flat black frame should fill the first histogram bin")
	}
}

// TestGlobalBreaksUnderInsetLocalSurvives is the motivation experiment in
// miniature: the same frame under an insert operation keeps its local
// structure (mapped points describe similarly) but its global signature
// moves far (background floods the histogram).
func TestGlobalBreaksUnderInsetLocalSurvives(t *testing.T) {
	gcfg := vidsim.DefaultConfig(63)
	gcfg.MinShot, gcfg.MaxShot = 25, 35
	seq := vidsim.Generate(gcfg, 100)
	tf := vidsim.Inset{Scale: 0.7, OffX: 0.15, OffY: 0.15, Background: 230}
	tseq := vidsim.ApplySeq(tf, seq)

	// Global distance between corresponding key-frames.
	g1 := ExtractGlobal(seq, DefaultConfig())
	ext := NewExtractor(tseq, DefaultConfig())
	globalDist := 0.0
	n := 0
	for _, l := range g1 {
		gfp := globalDescriptor(tseq.Frames[l.TC])
		globalDist += l.FP.Distance(gfp)
		n++
	}
	globalDist /= float64(n)

	// Local distance at perfectly mapped points.
	locals := Extract(seq, DefaultConfig())
	localDist, m := 0.0, 0
	w, h := seq.Frames[0].W, seq.Frames[0].H
	for _, l := range locals {
		tx, ty, ok := tf.MapPoint(l.X, l.Y, w, h)
		if !ok {
			continue
		}
		if fp, ok := ext.DescribeAt(tx, ty, int(l.TC)); ok {
			localDist += l.FP.Distance(fp)
			m++
		}
	}
	if m == 0 {
		t.Fatal("no mapped local correspondences")
	}
	localDist /= float64(m)
	if globalDist < 1.5*localDist {
		t.Fatalf("inset: global distance %.1f not clearly worse than local %.1f", globalDist, localDist)
	}
}
