package stat

import (
	"math"
	"math/rand"
	"testing"
)

func TestRegIncBetaKnownValues(t *testing.T) {
	// I_x(1, 1) = x (uniform cdf).
	for _, x := range []float64{0, 0.25, 0.5, 0.9, 1} {
		if got := RegIncBeta(1, 1, x); math.Abs(got-x) > 1e-12 {
			t.Errorf("I_%v(1,1) = %v", x, got)
		}
	}
	// I_x(2, 2) = x²(3-2x).
	for _, x := range []float64{0.1, 0.4, 0.7} {
		want := x * x * (3 - 2*x)
		if got := RegIncBeta(2, 2, x); math.Abs(got-want) > 1e-12 {
			t.Errorf("I_%v(2,2) = %v, want %v", x, got, want)
		}
	}
	// Symmetry: I_x(a, b) = 1 - I_{1-x}(b, a).
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		a := 0.2 + 5*r.Float64()
		b := 0.2 + 5*r.Float64()
		x := r.Float64()
		if d := RegIncBeta(a, b, x) + RegIncBeta(b, a, 1-x) - 1; math.Abs(d) > 1e-10 {
			t.Fatalf("symmetry violated: a=%v b=%v x=%v d=%v", a, b, x, d)
		}
	}
}

func TestRegIncBetaPanics(t *testing.T) {
	for _, bad := range []func(){
		func() { RegIncBeta(0, 1, 0.5) },
		func() { RegIncBeta(1, -1, 0.5) },
		func() { RegIncBeta(1, 1, -0.1) },
		func() { RegIncBeta(1, 1, 1.1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			bad()
		}()
	}
}

func TestStudentTCDFKnownValues(t *testing.T) {
	// t(1) is Cauchy: F(1) = 3/4.
	if got := StudentTCDF(1, 1); math.Abs(got-0.75) > 1e-10 {
		t.Errorf("Cauchy F(1) = %v", got)
	}
	if got := StudentTCDF(0, 7); got != 0.5 {
		t.Errorf("F(0) = %v", got)
	}
	// Symmetric.
	for _, x := range []float64{0.3, 1.5, 4} {
		if d := StudentTCDF(x, 5) + StudentTCDF(-x, 5) - 1; math.Abs(d) > 1e-12 {
			t.Fatalf("t cdf not symmetric at %v: %v", x, d)
		}
	}
	// Large nu approaches the normal cdf.
	for _, x := range []float64{-2, -0.5, 0.7, 1.8} {
		if d := StudentTCDF(x, 1e6) - NormalCDF(x, 0, 1); math.Abs(d) > 1e-4 {
			t.Fatalf("t(1e6) cdf far from normal at %v: %v", x, d)
		}
	}
	// Known quantile: t(4) has F(2.776) ~= 0.975.
	if got := StudentTCDF(2.776, 4); math.Abs(got-0.975) > 5e-4 {
		t.Errorf("t(4) F(2.776) = %v", got)
	}
}

func TestStudentTMonteCarlo(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	const nu = 5.0
	const n = 40000
	count := 0
	for i := 0; i < n; i++ {
		// T = Z / sqrt(V/nu), V ~ chi2(nu).
		z := r.NormFloat64()
		v := 0.0
		for j := 0; j < int(nu); j++ {
			g := r.NormFloat64()
			v += g * g
		}
		if z/math.Sqrt(v/nu) <= 1.2 {
			count++
		}
	}
	mc := float64(count) / n
	if got := StudentTCDF(1.2, nu); math.Abs(got-mc) > 0.01 {
		t.Fatalf("F(1.2) = %v, Monte-Carlo %v", got, mc)
	}
}

func TestLaplaceCDF(t *testing.T) {
	if got := LaplaceCDF(0, 2); got != 0.5 {
		t.Errorf("F(0) = %v", got)
	}
	for _, x := range []float64{0.5, 1, 3} {
		if d := LaplaceCDF(x, 1.5) + LaplaceCDF(-x, 1.5) - 1; math.Abs(d) > 1e-12 {
			t.Fatalf("Laplace cdf not symmetric at %v", x)
		}
	}
	// Variance check by integration: mass within one std (sqrt(2) b).
	b := 3.0
	std := math.Sqrt2 * b
	if got := LaplaceIntervalMass(-std, std, b); math.Abs(got-(1-math.Exp(-math.Sqrt2))) > 1e-12 {
		t.Errorf("one-std mass = %v", got)
	}
	if got := LaplaceIntervalMass(math.Inf(-1), math.Inf(1), b); got != 1 {
		t.Errorf("full mass = %v", got)
	}
	if got := LaplaceIntervalMass(2, 1, b); got != 0 {
		t.Errorf("inverted interval = %v", got)
	}
}

func TestStudentTIntervalMass(t *testing.T) {
	if got := StudentTIntervalMass(math.Inf(-1), math.Inf(1), 2, 4); got != 1 {
		t.Errorf("full mass = %v", got)
	}
	// Scaled symmetry: P(-s <= X < s) with X = s*T.
	s := 7.0
	want := StudentTCDF(1, 4) - StudentTCDF(-1, 4)
	if got := StudentTIntervalMass(-s, s, s, 4); math.Abs(got-want) > 1e-12 {
		t.Errorf("scaled mass = %v, want %v", got, want)
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic for scale <= 0")
		}
	}()
	StudentTIntervalMass(0, 1, 0, 4)
}
