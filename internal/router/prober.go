package router

// Active health probing: one goroutine per unique backend polls
// /healthz and writes the three-way classification the replica ordering
// reads. The classification is advisory — an attempt is still permitted
// against a down backend when nothing better exists — so a stale probe
// degrades placement quality, never correctness.

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"time"
)

// maxProbeBody bounds a decoded /healthz body; live-mode health reports
// are a few hundred bytes.
const maxProbeBody = 1 << 20

// startProber launches the per-backend probe loops. Each backend is
// probed immediately (so the first requests already see real
// classifications) and then every interval.
func (r *Router) startProber(interval time.Duration) {
	for _, be := range r.backends {
		r.wg.Add(1)
		go func(be *backend) {
			defer r.wg.Done()
			r.probe(be)
			t := time.NewTicker(interval)
			defer t.Stop()
			for {
				select {
				case <-r.stop:
					return
				case <-t.C:
					r.probe(be)
				}
			}
		}(be)
	}
}

// probe performs one health check and stores the classification:
// unreachable or non-200 is down; status "ok" is healthy; anything the
// backend says about itself short of that — "degraded" (read-only
// persistence trouble), "draining" (graceful shutdown underway) — is
// degraded: still serving searches, but siblings are preferred.
func (r *Router) probe(be *backend) {
	r.met.probes.Inc()
	ctx, cancel := context.WithTimeout(context.Background(), r.probeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, be.url+"/healthz", nil)
	if err != nil {
		be.setHealth(healthDown)
		return
	}
	resp, err := r.client.Do(req)
	if err != nil {
		be.setHealth(healthDown)
		return
	}
	defer resp.Body.Close()
	var body struct {
		Status  string `json:"status"`
		Records int64  `json:"records"`
	}
	if resp.StatusCode != http.StatusOK ||
		json.NewDecoder(io.LimitReader(resp.Body, maxProbeBody)).Decode(&body) != nil {
		be.setHealth(healthDown)
		return
	}
	be.records.Store(body.Records)
	if body.Status == "ok" {
		be.setHealth(healthHealthy)
	} else {
		be.setHealth(healthDegraded)
	}
}
