// Package core implements the paper's primary contribution: the
// Statistical Similarity Search (S³) index. Fingerprints are ordered along
// a Hilbert space-filling curve; a *statistical query* of expectation α
// retrieves every fingerprint inside a region Vα of the feature space
// holding at least probability mass α under a distortion model p_ΔS
// (Section II, eq. 1). The region is assembled from the hyper-rectangular
// p-blocks induced by the curve partition (Section IV-A): a single pruned
// descent finds the block set B(t) whose individual masses exceed a
// threshold t, and a Newton-inspired iteration finds the largest t whose
// block set still carries mass >= α (eq. 4). Exact ε-range queries over
// the same structure (geometric filtering + distance refinement) and the
// pseudo-disk batched execution of Section IV-B are provided for the
// paper's comparisons.
package core

import (
	"fmt"
	"math"

	"s3cbcd/internal/stat"
)

// Model is the distortion model p_ΔS of the statistical query. The S³
// system's one structural assumption (Section IV) is that the D
// components of the distortion vector are independent, so the model is a
// product of per-component distributions.
type Model interface {
	// Dims returns the number of components D.
	Dims() int
	// ComponentMass returns P(lo <= ΔS_j < hi) for component j. lo may be
	// -Inf and hi may be +Inf.
	ComponentMass(j int, lo, hi float64) float64
}

// IsoNormal is the practical model of Section IV-C: zero-mean normal with
// the same standard deviation Sigma for every component.
type IsoNormal struct {
	D     int
	Sigma float64
}

// Dims implements Model.
func (m IsoNormal) Dims() int { return m.D }

// ComponentMass implements Model.
func (m IsoNormal) ComponentMass(_ int, lo, hi float64) float64 {
	return stat.NormalIntervalMass(lo, hi, 0, m.Sigma)
}

// Radius returns the distribution of ||ΔS|| under the model, used to pick
// the ε of a range query with matched expectation (Section V-A).
func (m IsoNormal) Radius() stat.RadiusDist {
	return stat.RadiusDist{D: m.D, Sigma: m.Sigma}
}

// PlanKey implements PlanKeyer: Sigma's bit pattern identifies the model
// injectively — D does not need encoding because query validation pins
// it to the index dimension before any cache lookup.
func (m IsoNormal) PlanKey() (uint64, bool) { return math.Float64bits(m.Sigma), true }

// DiagNormal is the general independent zero-mean normal model with one
// standard deviation per component (the σ_j of Section IV-C before they
// are averaged into the single σ of the practical model).
type DiagNormal struct {
	Sigmas []float64
}

// Dims implements Model.
func (m DiagNormal) Dims() int { return len(m.Sigmas) }

// ComponentMass implements Model.
func (m DiagNormal) ComponentMass(j int, lo, hi float64) float64 {
	return stat.NormalIntervalMass(lo, hi, 0, m.Sigmas[j])
}

// validateModel checks a model against the index dimension.
func validateModel(m Model, dims int) error {
	if m == nil {
		return fmt.Errorf("core: nil distortion model")
	}
	if m.Dims() != dims {
		return fmt.Errorf("core: model has %d dims, index has %d", m.Dims(), dims)
	}
	return nil
}

// blockMass integrates the distortion model over the block [lo, hi)
// centred on query q, extending edge blocks to infinity: a referenced
// fingerprint cannot lie outside the component range, so the tail mass of
// the model belongs to the boundary blocks. Component intervals are
// shifted by -0.5 so each integer fingerprint value owns a unit cell
// centred on it. The product is abandoned as soon as it falls below
// floor (factors never exceed 1), which is what makes high-threshold
// descents cheap.
func blockMass(m Model, q []float64, lo, hi []uint32, side uint32, floor float64) float64 {
	mass := 1.0
	for j := range lo {
		a, b := float64(lo[j])-0.5, float64(hi[j])-0.5
		if lo[j] == 0 {
			a = math.Inf(-1)
		}
		if hi[j] == side {
			b = math.Inf(1)
		}
		mass *= m.ComponentMass(j, a-q[j], b-q[j])
		if mass <= floor {
			return mass
		}
	}
	return mass
}
