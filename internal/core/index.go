package core

import (
	"fmt"
	"math"
	"sync"

	"s3cbcd/internal/hilbert"
	"s3cbcd/internal/store"
)

// planner holds what the filtering step needs: the curve geometry and the
// partition depth. Crucially it does not reference the record data, which
// is what allows the pseudo-disk strategy to filter a whole query batch
// before loading any database section (Section IV-B).
type planner struct {
	curve *hilbert.Curve
	depth int
	// scratch pools the frontier planner's working state (mass cache,
	// frontier and leaf buffers) for the stateless plan entry points, so
	// concurrent PlanStat calls stay allocation-light without sharing
	// state. The engine's per-worker query contexts hold their own.
	scratch sync.Pool // *planScratch
}

// planScratch is one pooled set of planning buffers.
type planScratch struct {
	mc *massCache
	fs *frontierState
}

func (pl *planner) getScratch() *planScratch {
	if v := pl.scratch.Get(); v != nil {
		ps := v.(*planScratch)
		ps.mc.reset()
		return ps
	}
	return &planScratch{
		mc: newMassCache(pl.dims(), pl.curve.SideLen()),
		fs: newFrontierState(pl.curve),
	}
}

// dims returns the fingerprint dimension.
func (pl *planner) dims() int { return pl.curve.Dims() }

// Index is the in-memory S³ index: a curve-ordered fingerprint database
// plus the partition depth p used by the filtering step. The database is
// static (Section IV); rebuilding is the only way to insert or delete.
// An Index is safe for concurrent queries (SetDepth excluded).
type Index struct {
	planner
	db *store.DB
}

// DefaultDepth returns the heuristic initial partition depth for n
// records: enough blocks that a block holds a handful of records. The
// paper learns the optimal p at the start of the retrieval stage
// (TuneDepth does that); this is only the starting point.
func DefaultDepth(curve *hilbert.Curve, n int) int {
	if n < 2 {
		return 1
	}
	p := int(math.Ceil(math.Log2(float64(n)))) + 1
	if p < 1 {
		p = 1
	}
	if max := curve.IndexBits(); p > max {
		p = max
	}
	return p
}

// NewIndex wraps a database. depth <= 0 selects DefaultDepth.
func NewIndex(db *store.DB, depth int) (*Index, error) {
	curve := db.Curve()
	if depth <= 0 {
		depth = DefaultDepth(curve, db.Len())
	}
	if depth > curve.IndexBits() {
		return nil, fmt.Errorf("core: depth %d exceeds index bits %d", depth, curve.IndexBits())
	}
	return &Index{planner: planner{curve: curve, depth: depth}, db: db}, nil
}

// DB returns the underlying database.
func (ix *Index) DB() *store.DB { return ix.db }

// SetDepth changes the partition depth. It panics outside [1, K*D].
func (pl *planner) SetDepth(p int) {
	if p < 1 || p > pl.curve.IndexBits() {
		panic(fmt.Sprintf("core: depth %d outside [1,%d]", p, pl.curve.IndexBits()))
	}
	pl.depth = p
}

// Depth returns the current partition depth p.
func (pl *planner) Depth() int { return pl.depth }

// Match is one fingerprint returned by a query.
type Match struct {
	// Pos is the record index in the database.
	Pos int
	// ID and TC are the stored video identifier and time code.
	ID, TC uint32
	// X and Y are the stored interest point position (0 when the producer
	// did not record positions).
	X, Y uint16
	// Dist is the L2 distance to the query for range queries, and -1 for
	// statistical queries, whose answer is the region itself.
	Dist float64
}

// queryPoint widens a byte fingerprint to float64 coordinates.
func queryPoint(q []byte, dims int) ([]float64, error) {
	if len(q) != dims {
		return nil, fmt.Errorf("core: query has %d components, index has %d", len(q), dims)
	}
	out := make([]float64, dims)
	for i, b := range q {
		out[i] = float64(b)
	}
	return out, nil
}

// distSqToFP returns the squared L2 distance between float query q and a
// stored byte fingerprint.
func distSqToFP(q []float64, fp []byte) float64 {
	s := 0.0
	for i, b := range fp {
		d := q[i] - float64(b)
		s += d * d
	}
	return s
}
