package store

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"s3cbcd/internal/bitkey"
	"s3cbcd/internal/hilbert"
)

func randRecords(r *rand.Rand, curve *hilbert.Curve, n int) []Record {
	recs := make([]Record, n)
	side := int(curve.SideLen())
	for i := range recs {
		fp := make([]byte, curve.Dims())
		for j := range fp {
			fp[j] = byte(r.Intn(side))
		}
		recs[i] = Record{FP: fp, ID: uint32(r.Intn(50)), TC: uint32(r.Intn(10000))}
	}
	return recs
}

func TestBuildSortsByKey(t *testing.T) {
	curve := hilbert.MustNew(20, 8)
	r := rand.New(rand.NewSource(1))
	recs := randRecords(r, curve, 500)
	db := MustBuild(curve, recs)
	if db.Len() != 500 || db.Dims() != 20 {
		t.Fatalf("Len=%d Dims=%d", db.Len(), db.Dims())
	}
	pt := make([]uint32, 20)
	for i := 0; i < db.Len(); i++ {
		if i > 0 && db.Key(i).Less(db.Key(i-1)) {
			t.Fatalf("keys not sorted at %d", i)
		}
		for j, b := range db.FP(i) {
			pt[j] = uint32(b)
		}
		if curve.Encode(pt) != db.Key(i) {
			t.Fatalf("stored key mismatch at %d", i)
		}
	}
}

func TestBuildValidation(t *testing.T) {
	curve := hilbert.MustNew(4, 4)
	if _, err := Build(curve, []Record{{FP: []byte{1, 2, 3}}}); err == nil {
		t.Fatal("short fingerprint accepted")
	}
	if _, err := Build(curve, []Record{{FP: []byte{1, 2, 3, 200}}}); err == nil {
		t.Fatal("out-of-grid component accepted")
	}
	db, err := Build(curve, nil)
	if err != nil || db.Len() != 0 {
		t.Fatalf("empty build: %v", err)
	}
}

func TestFindIntervalMatchesBruteForce(t *testing.T) {
	curve := hilbert.MustNew(6, 4)
	r := rand.New(rand.NewSource(2))
	db := MustBuild(curve, randRecords(r, curve, 300))
	for trial := 0; trial < 200; trial++ {
		a := bitkey.FromUint64(uint64(r.Int63n(1 << 24)))
		b := bitkey.FromUint64(uint64(r.Int63n(1 << 24)))
		if b.Less(a) {
			a, b = b, a
		}
		iv := hilbert.Interval{Start: a, End: b}
		lo, hi := db.FindInterval(iv)
		for i := 0; i < db.Len(); i++ {
			in := db.Key(i).Cmp(a) >= 0 && db.Key(i).Less(b)
			got := i >= lo && i < hi
			if in != got {
				t.Fatalf("record %d: in=%v got=%v (lo=%d hi=%d)", i, in, got, lo, hi)
			}
		}
	}
}

func TestSectionStarts(t *testing.T) {
	curve := hilbert.MustNew(4, 4)
	r := rand.New(rand.NewSource(3))
	db := MustBuild(curve, randRecords(r, curve, 200))
	for _, bits := range []int{0, 1, 3, 6} {
		starts := db.SectionStarts(bits)
		if len(starts) != (1<<uint(bits))+1 {
			t.Fatalf("bits=%d: %d entries", bits, len(starts))
		}
		if starts[0] != 0 || starts[len(starts)-1] != db.Len() {
			t.Fatalf("bits=%d: boundary entries %d %d", bits, starts[0], starts[len(starts)-1])
		}
		shift := uint(curve.IndexBits() - bits)
		for s := 0; s < 1<<uint(bits); s++ {
			end := bitkey.FromUint64(uint64(s) + 1).Shl(shift)
			for i := starts[s]; i < starts[s+1]; i++ {
				if !db.Key(i).Less(end) {
					t.Fatalf("bits=%d section %d: record %d beyond section end", bits, s, i)
				}
				if s > 0 {
					begin := bitkey.FromUint64(uint64(s)).Shl(shift)
					if db.Key(i).Less(begin) {
						t.Fatalf("bits=%d section %d: record %d before section start", bits, s, i)
					}
				}
			}
		}
	}
}

func TestFileRoundTrip(t *testing.T) {
	curve := hilbert.MustNew(20, 8)
	r := rand.New(rand.NewSource(4))
	db := MustBuild(curve, randRecords(r, curve, 400))
	path := filepath.Join(t.TempDir(), "db.s3db")
	if err := db.WriteFile(path, 6); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != db.Len() || got.Dims() != db.Dims() {
		t.Fatalf("shape mismatch: %d/%d", got.Len(), got.Dims())
	}
	for i := 0; i < db.Len(); i++ {
		if got.Key(i) != db.Key(i) || got.ID(i) != db.ID(i) || got.TC(i) != db.TC(i) {
			t.Fatalf("record %d metadata mismatch", i)
		}
		g, w := got.FP(i), db.FP(i)
		for j := range w {
			if g[j] != w[j] {
				t.Fatalf("record %d fingerprint mismatch", i)
			}
		}
	}
}

func TestFileSectionsAndChunks(t *testing.T) {
	curve := hilbert.MustNew(8, 6)
	r := rand.New(rand.NewSource(5))
	db := MustBuild(curve, randRecords(r, curve, 600))
	path := filepath.Join(t.TempDir(), "db.s3db")
	if err := db.WriteFile(path, 8); err != nil {
		t.Fatal(err)
	}
	fl, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer fl.Close()
	if fl.Count() != 600 || fl.SectionBits() != 8 {
		t.Fatalf("Count=%d SectionBits=%d", fl.Count(), fl.SectionBits())
	}
	// Coarser partitions must agree with DB.SectionStarts.
	for _, bits := range []int{0, 3, 8} {
		starts := db.SectionStarts(bits)
		total := 0
		for s := 0; s < 1<<uint(bits); s++ {
			lo, hi := fl.SectionRecordRange(bits, s)
			if lo != starts[s] || hi != starts[s+1] {
				t.Fatalf("bits=%d section %d: [%d,%d) want [%d,%d)", bits, s, lo, hi, starts[s], starts[s+1])
			}
			ch, err := fl.LoadRecords(lo, hi)
			if err != nil {
				t.Fatal(err)
			}
			if ch.Base != lo || ch.Len() != hi-lo {
				t.Fatalf("chunk shape: base=%d len=%d", ch.Base, ch.Len())
			}
			for i := 0; i < ch.Len(); i++ {
				gi := ch.Base + i
				if ch.Key(i) != db.Key(gi) || ch.ID(i) != db.ID(gi) || ch.TC(i) != db.TC(gi) {
					t.Fatalf("chunk record %d mismatch", gi)
				}
				g, w := ch.FP(i), db.FP(gi)
				for j := range w {
					if g[j] != w[j] {
						t.Fatalf("chunk fp %d mismatch", gi)
					}
				}
			}
			total += ch.Len()
		}
		if total != 600 {
			t.Fatalf("bits=%d: sections cover %d records", bits, total)
		}
	}
	// Chunk interval search agrees with the DB on a loaded chunk.
	lo, hi := fl.SectionRecordRange(0, 0)
	ch, err := fl.LoadRecords(lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	iv := hilbert.Interval{Start: db.Key(100), End: db.Key(200)}
	clo, chi := ch.FindInterval(iv)
	dlo, dhi := db.FindInterval(iv)
	if clo != dlo || chi != dhi {
		t.Fatalf("chunk FindInterval [%d,%d), db [%d,%d)", clo, chi, dlo, dhi)
	}
}

func TestLoadRecordsValidation(t *testing.T) {
	curve := hilbert.MustNew(4, 4)
	db := MustBuild(curve, randRecords(rand.New(rand.NewSource(6)), curve, 10))
	path := filepath.Join(t.TempDir(), "db.s3db")
	if err := db.WriteFile(path, 2); err != nil {
		t.Fatal(err)
	}
	fl, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer fl.Close()
	if _, err := fl.LoadRecords(-1, 5); err == nil {
		t.Fatal("negative lo accepted")
	}
	if _, err := fl.LoadRecords(0, 11); err == nil {
		t.Fatal("hi beyond count accepted")
	}
	if ch, err := fl.LoadRecords(5, 5); err != nil || ch.Len() != 0 {
		t.Fatalf("empty range: %v", err)
	}
}

func TestOpenRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad")
	if err := os.WriteFile(bad, []byte("not a database"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(bad); err == nil {
		t.Fatal("garbage accepted")
	}
	short := filepath.Join(dir, "short")
	if err := os.WriteFile(short, []byte("S3"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(short); err == nil {
		t.Fatal("truncated header accepted")
	}
	if _, err := Open(filepath.Join(dir, "missing")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestOpenRejectsCorruptTable(t *testing.T) {
	curve := hilbert.MustNew(4, 4)
	db := MustBuild(curve, randRecords(rand.New(rand.NewSource(7)), curve, 20))
	path := filepath.Join(t.TempDir(), "db.s3db")
	if err := db.WriteFile(path, 2); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the first section table entry (must be 0).
	data[28] = 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path); err == nil {
		t.Fatal("corrupt section table accepted")
	}
}

func TestWriteFileValidation(t *testing.T) {
	curve := hilbert.MustNew(4, 4)
	db := MustBuild(curve, nil)
	if err := db.WriteFile(filepath.Join(t.TempDir(), "x"), -1); err == nil {
		t.Fatal("negative sectionBits accepted")
	}
	if err := db.WriteFile(filepath.Join(t.TempDir(), "x"), 17); err == nil {
		t.Fatal("oversized sectionBits accepted")
	}
}
