package router

import (
	"testing"
	"time"

	"s3cbcd/internal/obs"
)

func testBreaker(threshold int, cooldown time.Duration) (*breaker, *time.Time) {
	now := time.Unix(1000, 0)
	trips := obs.NewRegistry().Counter("s3_test_trips_total", "test")
	b := newBreaker(threshold, cooldown, trips)
	b.now = func() time.Time { return now }
	return b, &now
}

// mustAllow asserts allow admits the attempt and returns whether it is
// the half-open probe.
func mustAllow(t *testing.T, b *breaker, msg string) bool {
	t.Helper()
	ok, probe := b.allow()
	if !ok {
		t.Fatal(msg)
	}
	return probe
}

func refused(b *breaker) bool {
	ok, _ := b.allow()
	return !ok
}

func TestBreakerTripsAtThreshold(t *testing.T) {
	b, _ := testBreaker(3, time.Second)
	for i := 0; i < 2; i++ {
		b.failure()
		if probe := mustAllow(t, b, "open before threshold"); probe {
			t.Fatalf("closed breaker handed out a probe after %d failures", i+1)
		}
	}
	b.failure()
	if !refused(b) {
		t.Fatal("still closed after threshold consecutive failures")
	}
	if got := b.snapshot(); got != breakerOpen {
		t.Fatalf("state %v, want open", got)
	}
	if b.trips.Value() != 1 {
		t.Fatalf("trips %d, want 1", b.trips.Value())
	}
}

func TestBreakerSuccessResetsStreak(t *testing.T) {
	b, _ := testBreaker(3, time.Second)
	b.failure()
	b.failure()
	b.success()
	b.failure()
	b.failure()
	mustAllow(t, b, "tripped though the streak was broken by a success")
}

func TestBreakerHalfOpenProbe(t *testing.T) {
	b, now := testBreaker(1, time.Second)
	b.failure()
	if !refused(b) {
		t.Fatal("open breaker admitted a request before cooldown")
	}
	*now = now.Add(time.Second)
	if !mustAllow(t, b, "half-open breaker refused the probe") {
		t.Fatal("cooled-down admission not flagged as the probe")
	}
	// The probe is in flight: nothing else gets through.
	if !refused(b) {
		t.Fatal("half-open breaker admitted a second request")
	}
	b.success()
	if b.snapshot() != breakerClosed {
		t.Fatal("successful probe did not close the breaker")
	}
	if probe := mustAllow(t, b, "closed breaker refused"); probe {
		t.Fatal("closed breaker handed out a probe")
	}
}

func TestBreakerHalfOpenFailureReopens(t *testing.T) {
	b, now := testBreaker(1, time.Second)
	b.failure()
	*now = now.Add(time.Second)
	mustAllow(t, b, "probe refused")
	b.failure()
	if b.snapshot() != breakerOpen {
		t.Fatal("failed probe did not re-open the breaker")
	}
	if !refused(b) {
		t.Fatal("re-opened breaker admitted a request before a fresh cooldown")
	}
	*now = now.Add(time.Second)
	mustAllow(t, b, "re-opened breaker refused the next probe after cooldown")
}

// TestBreakerCancelProbeReturnsSlot is the stuck-half-open regression:
// a probe abandoned without an outcome (canceled attempt, budget-full
// launch) must hand its slot back so the breaker can probe again
// immediately, rather than refusing every request forever.
func TestBreakerCancelProbeReturnsSlot(t *testing.T) {
	b, now := testBreaker(1, time.Second)
	b.failure()
	*now = now.Add(time.Second)
	if !mustAllow(t, b, "probe refused") {
		t.Fatal("admission not flagged as the probe")
	}
	b.cancelProbe()
	if b.snapshot() != breakerOpen {
		t.Fatalf("canceled probe left state %v, want open", b.snapshot())
	}
	// The elapsed cooldown still counts: the next allow probes at once,
	// with no fresh cooldown the backend did nothing to earn.
	if !mustAllow(t, b, "breaker refused a re-probe after probe cancelation") {
		t.Fatal("re-probe admission not flagged as the probe")
	}
	b.success()
	if b.snapshot() != breakerClosed {
		t.Fatal("probe after cancelation could not close the breaker")
	}
	// cancelProbe on a breaker not in half-open is a no-op.
	b.cancelProbe()
	if b.snapshot() != breakerClosed {
		t.Fatal("cancelProbe disturbed a closed breaker")
	}
}

func TestBreakerAvailableHasNoSideEffects(t *testing.T) {
	b, now := testBreaker(1, time.Second)
	b.failure()
	*now = now.Add(time.Second)
	for i := 0; i < 3; i++ {
		if !b.available() {
			t.Fatal("cooled-down breaker reported unavailable")
		}
	}
	if b.snapshot() != breakerOpen {
		t.Fatal("available() transitioned the breaker state")
	}
	mustAllow(t, b, "allow refused after available reported true")
}

func TestBreakerDisabled(t *testing.T) {
	b, _ := testBreaker(-1, time.Second)
	for i := 0; i < 100; i++ {
		b.failure()
	}
	if probe := mustAllow(t, b, "disabled breaker tripped"); probe {
		t.Fatal("disabled breaker handed out a probe")
	}
	if !b.available() {
		t.Fatal("disabled breaker unavailable")
	}
	b.cancelProbe() // no-op, must not panic
}

func TestBackendBudget(t *testing.T) {
	be := &backend{budget: 2}
	if !be.tryAcquire() || !be.tryAcquire() {
		t.Fatal("in-budget acquire refused")
	}
	if be.tryAcquire() {
		t.Fatal("over-budget acquire admitted")
	}
	be.release()
	if !be.tryAcquire() {
		t.Fatal("freed slot refused")
	}
	unbounded := &backend{}
	for i := 0; i < 1000; i++ {
		if !unbounded.tryAcquire() {
			t.Fatal("unbounded backend refused")
		}
	}
}
