package router

// Chaos suite: an in-process flaky-backend harness injects 503s, torn
// responses, slow replies and hangs in front of real httpapi backends,
// and the tests assert the robustness headline — strict queries keep
// succeeding through retries, hedges and breakers with zero
// user-visible 5xx, and the router's metrics account for the injected
// failures. FAULT_SEED reruns a reported schedule.

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"s3cbcd/internal/hilbert"
	"s3cbcd/internal/httpapi"
	"s3cbcd/internal/store"
)

// flaky proxies search requests to an inner backend handler, injecting
// one fault class per request according to the current probabilities.
// Probes (/healthz) and metadata pass through clean: the chaos under
// test is the request path, not the prober.
type flaky struct {
	inner http.Handler

	mu                        sync.Mutex
	rng                       *rand.Rand
	p503, pTorn, pSlow, pHang float64
	slow                      time.Duration

	n503, nTorn, nSlow, nHang atomic.Int64
}

func newFlaky(inner http.Handler, seed int64) *flaky {
	return &flaky{inner: inner, rng: rand.New(rand.NewSource(seed))}
}

func (f *flaky) setFaults(p503, pTorn, pSlow, pHang float64, slow time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.p503, f.pTorn, f.pSlow, f.pHang, f.slow = p503, pTorn, pSlow, pHang, slow
}

func (f *flaky) injected() int64 {
	return f.n503.Load() + f.nTorn.Load() + f.nSlow.Load() + f.nHang.Load()
}

func (f *flaky) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if !strings.HasPrefix(r.URL.Path, "/search/") {
		f.inner.ServeHTTP(w, r)
		return
	}
	f.mu.Lock()
	roll := f.rng.Float64()
	p503, pTorn, pSlow, pHang, slow := f.p503, f.pTorn, f.pSlow, f.pHang, f.slow
	f.mu.Unlock()
	switch {
	case roll < p503:
		f.n503.Add(1)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		w.Write([]byte(`{"error":"injected 503"}`))
	case roll < p503+pTorn:
		f.nTorn.Add(1)
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"matches":[{"id":`))
		if fl, ok := w.(http.Flusher); ok {
			fl.Flush()
		}
		panic(http.ErrAbortHandler) // drop the connection mid-body
	case roll < p503+pTorn+pHang:
		f.nHang.Add(1)
		// Drain the body first: the server only notices the router
		// abandoning the request (and cancels this context) once it is
		// free to read the connection.
		io.Copy(io.Discard, r.Body)
		<-r.Context().Done() // hold the request until the router gives up
	case roll < p503+pTorn+pHang+pSlow:
		f.nSlow.Add(1)
		time.Sleep(slow)
		f.inner.ServeHTTP(w, r)
	default:
		f.inner.ServeHTTP(w, r)
	}
}

// apiHandler builds a backend handler over recs without a listener —
// the inner handler flaky proxies wrap.
func apiHandler(tb testing.TB, curve *hilbert.Curve, recs []store.Record) http.Handler {
	tb.Helper()
	db := store.MustBuild(curve, recs)
	s, err := httpapi.New(db, httpapi.Options{Depth: testDepth, Shards: 2, Workers: 2})
	if err != nil {
		tb.Fatal(err)
	}
	return s
}

func backendFor(rt *Router, url string) *backend {
	for _, be := range rt.backends {
		if be.url == url {
			return be
		}
	}
	return nil
}

// metrics5xxIsZero scans /metrics for router request counters in the
// 5xx class and requires every one to read zero.
func metrics5xxIsZero(t *testing.T, rts *httptest.Server) {
	t.Helper()
	resp, err := http.Get(rts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "s3_router_requests_total") && strings.Contains(line, `code="5xx"`) {
			if !strings.HasSuffix(line, " 0") {
				t.Errorf("user-visible 5xx recorded: %s", line)
			}
		}
	}
}

func statBody(fp []byte) string {
	return fmt.Sprintf(`{"fingerprint":%s,"alpha":0.8,"sigma":10}`, fpJSON(fp))
}

// TestChaosSerialAccounting runs serial strict queries against one
// group whose first replica injects 503s and torn responses: every
// query must succeed byte-identically to the single node, and the
// metrics must account for every injected failure exactly — each fault
// is one backend failure and one retry.
func TestChaosSerialAccounting(t *testing.T) {
	seed := faultSeed(t)
	curve := testCurve(t)
	rng := rand.New(rand.NewSource(seed))
	ordered := sortedRecords(store.MustBuild(curve, randomRecords(rng, 300)))
	ref := apiServer(t, curve, ordered)

	api := apiServer(t, curve, ordered) // group's data = whole corpus (1 group)
	fl := newFlaky(apiHandler(t, curve, ordered), seed+7)
	fl.setFaults(0.2, 0.15, 0, 0, 0)
	flakySrv := httptest.NewServer(fl)
	t.Cleanup(flakySrv.Close)

	rt, rts := startRouter(t, Options{
		Groups:        [][]string{{flakySrv.URL, api.URL}},
		Retries:       4,
		HedgeQuantile: -1, // accounting must not race a hedge
		ProbeInterval: -1,
	})

	const n = 120
	for i := 0; i < n; i++ {
		body := statBody(ordered[rng.Intn(len(ordered))].FP)
		refCode, refRaw, _ := postBytes(t, ref.URL, "/search/statistical", body)
		code, raw, _ := postBytes(t, rts.URL, "/search/statistical", body)
		if refCode != http.StatusOK || code != http.StatusOK {
			t.Fatalf("query %d: ref=%d router=%d (%s)", i, refCode, code, raw)
		}
		if !bytes.Equal(refRaw, raw) {
			t.Fatalf("query %d diverged under chaos:\nref:    %s\nrouter: %s", i, refRaw, raw)
		}
	}

	injected := fl.injected()
	if injected == 0 {
		t.Fatal("degenerate run: no faults injected")
	}
	be := backendFor(rt, flakySrv.URL)
	if got := be.failures.Value(); got != injected {
		t.Errorf("flaky backend failures %d, want %d (one per injected fault)", got, injected)
	}
	if got := rt.met.retries.Value(); got != injected {
		t.Errorf("retries %d, want %d (one per injected fault)", got, injected)
	}
	if clean := backendFor(rt, api.URL); clean.failures.Value() != 0 {
		t.Errorf("clean backend charged %d failures", clean.failures.Value())
	}
	metrics5xxIsZero(t, rts)
}

// TestChaosHedgeRescuesHangs makes the flaky replica hang every
// request it receives: only a hedge can rescue those queries, and all
// of them must still succeed with zero user-visible errors.
func TestChaosHedgeRescuesHangs(t *testing.T) {
	seed := faultSeed(t)
	curve := testCurve(t)
	rng := rand.New(rand.NewSource(seed))
	ordered := sortedRecords(store.MustBuild(curve, randomRecords(rng, 240)))

	clean := apiServer(t, curve, ordered)
	fl := newFlaky(apiHandler(t, curve, ordered), seed+13)
	fl.setFaults(0, 0, 0, 1.0, 0) // every proxied search hangs
	flakySrv := httptest.NewServer(fl)
	t.Cleanup(flakySrv.Close)

	rt, rts := startRouter(t, Options{
		Groups:        [][]string{{flakySrv.URL, clean.URL}},
		HedgeMin:      time.Millisecond,
		ProbeInterval: -1,
	})

	const n = 30
	for i := 0; i < n; i++ {
		code, raw, _ := postBytes(t, rts.URL, "/search/statistical", statBody(ordered[rng.Intn(len(ordered))].FP))
		if code != http.StatusOK {
			t.Fatalf("query %d: status %d (%s)", i, code, raw)
		}
	}
	hangs := fl.nHang.Load()
	if hangs == 0 {
		t.Fatal("degenerate run: the flaky replica was never primary")
	}
	// Every hang is tied to at least one hedge event: a hanging primary
	// forces a rescue hedge, and a hang on the hedge path was itself a
	// counted hedge. Wins can undercount hangs (a hedge aimed at the
	// hanging replica loses to the primary), so only their existence is
	// asserted.
	if got := rt.met.hedges.Value(); got < hangs {
		t.Errorf("hedges %d < hangs %d: some hung queries were rescued without a hedge?", got, hangs)
	}
	if rt.met.hedgeWins.Value() == 0 {
		t.Error("no hedge ever won though the primary replica hangs every request")
	}
	metrics5xxIsZero(t, rts)
}

// TestChaosBreakerTripsAndHeals drives a replica that always 503s
// until its breaker opens, then heals it and watches the half-open
// probe close the breaker again.
func TestChaosBreakerTripsAndHeals(t *testing.T) {
	seed := faultSeed(t)
	curve := testCurve(t)
	rng := rand.New(rand.NewSource(seed))
	ordered := sortedRecords(store.MustBuild(curve, randomRecords(rng, 200)))

	clean := apiServer(t, curve, ordered)
	fl := newFlaky(apiHandler(t, curve, ordered), seed+29)
	fl.setFaults(1.0, 0, 0, 0, 0)
	flakySrv := httptest.NewServer(fl)
	t.Cleanup(flakySrv.Close)

	rt, rts := startRouter(t, Options{
		Groups:           [][]string{{flakySrv.URL, clean.URL}},
		BreakerThreshold: 2,
		BreakerCooldown:  30 * time.Millisecond,
		HedgeQuantile:    -1,
		ProbeInterval:    -1,
	})
	be := backendFor(rt, flakySrv.URL)
	body := statBody(ordered[0].FP)

	for i := 0; i < 8; i++ {
		code, raw, _ := postBytes(t, rts.URL, "/search/statistical", body)
		if code != http.StatusOK {
			t.Fatalf("query %d: status %d (%s) — the clean sibling must cover", i, code, raw)
		}
	}
	if rt.met.breakerTrips.Value() == 0 {
		t.Fatal("breaker never tripped under constant 503s")
	}
	if be.br.snapshot() == breakerClosed {
		t.Fatal("breaker closed while the replica still 503s")
	}

	fl.setFaults(0, 0, 0, 0, 0) // replica heals
	deadline := time.Now().Add(5 * time.Second)
	for be.br.snapshot() != breakerClosed {
		if time.Now().After(deadline) {
			t.Fatal("breaker never closed after the replica healed")
		}
		time.Sleep(35 * time.Millisecond) // let the cooldown elapse
		if code, raw, _ := postBytes(t, rts.URL, "/search/statistical", body); code != http.StatusOK {
			t.Fatalf("status %d during heal (%s)", code, raw)
		}
	}
	metrics5xxIsZero(t, rts)
}

// TestChaosStormStrict is the headline: two shard groups, each with a
// flaky replica injecting the full fault mix under concurrent load,
// and every strict query must succeed — zero user-visible 5xx — with
// stat responses byte-identical to the single-node reference.
func TestChaosStormStrict(t *testing.T) {
	seed := faultSeed(t)
	curve := testCurve(t)
	rng := rand.New(rand.NewSource(seed))
	ordered := sortedRecords(store.MustBuild(curve, randomRecords(rng, 500)))
	ref := apiServer(t, curve, ordered)
	chunks := splitGroups(rng, ordered, 2)

	var flakies []*flaky
	var groups [][]string
	for i, chunk := range chunks {
		fl := newFlaky(apiHandler(t, curve, chunk), seed+101*int64(i))
		fl.setFaults(0.15, 0.10, 0.10, 0.05, 15*time.Millisecond)
		flakySrv := httptest.NewServer(fl)
		t.Cleanup(flakySrv.Close)
		cleanSrv := apiServer(t, curve, chunk)
		flakies = append(flakies, fl)
		groups = append(groups, []string{flakySrv.URL, cleanSrv.URL})
	}

	rt, rts := startRouter(t, Options{
		Groups:        groups,
		Retries:       3,
		HedgeMin:      time.Millisecond,
		ProbeInterval: 25 * time.Millisecond,
	})

	// Pre-compute reference bodies serially, then storm concurrently.
	type query struct {
		path, body, want string
		knn              bool
	}
	var queries []query
	for i := 0; i < 40; i++ {
		fp := ordered[rng.Intn(len(ordered))].FP
		switch i % 4 {
		case 0:
			queries = append(queries, query{path: "/search/statistical", body: statBody(fp)})
		case 1:
			queries = append(queries, query{path: "/search/range",
				body: fmt.Sprintf(`{"fingerprint":%s,"epsilon":120}`, fpJSON(fp))})
		case 2:
			queries = append(queries, query{path: "/search/statistical/batch",
				body: fmt.Sprintf(`{"fingerprints":[%s],"alpha":0.9,"sigma":20}`, fpJSON(fp))})
		case 3:
			queries = append(queries, query{path: "/search/knn",
				body: fmt.Sprintf(`{"fingerprint":%s,"k":8}`, fpJSON(fp)), knn: true})
		}
	}
	for i := range queries {
		code, raw, _ := postBytes(t, ref.URL, queries[i].path, queries[i].body)
		if code != http.StatusOK {
			t.Fatalf("reference %s: status %d", queries[i].path, code)
		}
		queries[i].want = string(raw)
	}

	const workers = 8
	const rounds = 3
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for round := 0; round < rounds; round++ {
				for qi, q := range queries {
					if (qi+round)%workers != w%workers {
						continue
					}
					code, raw, _ := postBytes(t, rts.URL, q.path, q.body)
					if code != http.StatusOK {
						t.Errorf("%s under chaos: status %d (%s)", q.path, code, raw)
						continue
					}
					if q.knn {
						compareKNN(t, []byte(q.want), raw)
					} else if string(raw) != q.want {
						t.Errorf("%s diverged under chaos:\nref:    %s\nrouter: %s", q.path, q.want, raw)
					}
				}
			}
		}(w)
	}
	wg.Wait()

	var injected int64
	for _, fl := range flakies {
		injected += fl.injected()
	}
	if injected == 0 {
		t.Fatal("degenerate storm: no faults injected")
	}
	t.Logf("storm: injected=%d retries=%d hedges=%d hedgeWins=%d trips=%d",
		injected, rt.met.retries.Value(), rt.met.hedges.Value(),
		rt.met.hedgeWins.Value(), rt.met.breakerTrips.Value())
	if rt.met.retries.Value()+rt.met.hedges.Value() == 0 {
		t.Error("chaos survived without a single retry or hedge — faults cannot have reached the router")
	}
	metrics5xxIsZero(t, rts)
}
