// Tuning: the operational knobs of the S³ index. This example shows (a)
// the partition-depth trade-off T(p) = T_f(p) + T_r(p) and the automatic
// p_min learning of Section IV-A, and (b) the pseudo-disk batched
// execution of Section IV-B under a memory budget.
//
// Run with: go run ./examples/tuning
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"

	s3 "s3cbcd"
)

func main() {
	log.SetFlags(0)
	const (
		dims  = 20
		n     = 120_000
		sigma = 18.0
	)
	r := rand.New(rand.NewSource(3))
	recs := make([]s3.Record, n)
	for i := range recs {
		fp := make([]byte, dims)
		for j := range fp {
			fp[j] = byte(r.Intn(256))
		}
		recs[i] = s3.Record{FP: fp, ID: uint32(i / 50), TC: uint32(i % 50)}
	}
	idx, err := s3.BuildIndex(dims, recs, s3.IndexOptions{})
	if err != nil {
		log.Fatal(err)
	}

	// Sample queries for tuning: stored fingerprints plus model noise.
	samples := make([][]byte, 12)
	for i := range samples {
		src := recs[r.Intn(n)].FP
		q := make([]byte, dims)
		for j, b := range src {
			v := float64(b) + r.NormFloat64()*sigma
			if v < 0 {
				v = 0
			} else if v > 255 {
				v = 255
			}
			q[j] = byte(v)
		}
		samples[i] = q
	}
	sq := s3.StatQuery{Alpha: 0.8, Model: s3.IsoNormal{D: dims, Sigma: sigma}}

	fmt.Printf("initial depth p=%d; learning p_min...\n", idx.Depth())
	sweep, err := idx.Tune(samples, sq)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%6s %12s %12s %12s %10s\n", "p", "filter", "refine", "total", "blocks")
	for _, dt := range sweep {
		fmt.Printf("%6d %12v %12v %12v %10.1f\n",
			dt.Depth, dt.Filter.Round(1000), dt.Refine.Round(1000), dt.Total.Round(1000), dt.Blocks)
	}
	fmt.Printf("tuned to p_min = %d\n\n", idx.Depth())

	// Pseudo-disk: run a query batch against the same database on disk
	// with only ~an eighth of it resident at a time.
	dir, err := os.MkdirTemp("", "s3tuning")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "db.s3db")
	if err := idx.Save(path, 12); err != nil {
		log.Fatal(err)
	}
	disk, err := s3.OpenDiskIndex(path, idx.Depth())
	if err != nil {
		log.Fatal(err)
	}
	defer disk.Close()
	results, stats, err := disk.SearchBatch(samples, sq, n/8)
	if err != nil {
		log.Fatal(err)
	}
	total := 0
	for _, rs := range results {
		total += len(rs)
	}
	fmt.Printf("pseudo-disk batch: %d queries, %d matches\n", len(samples), total)
	fmt.Printf("  curve split in 2^%d sections; %d sections loaded, %d records read, peak residency %d\n",
		stats.SectionBits, stats.SectionsLoaded, stats.RecordsLoaded, stats.MaxResident)
	fmt.Printf("  filter %v, load %v, refine %v (eq. 5: T_load amortized over the batch)\n",
		stats.FilterTime.Round(1000), stats.LoadTime.Round(1000), stats.RefineTime.Round(1000))
}
