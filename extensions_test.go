package s3

import (
	"math/rand"
	"testing"

	"s3cbcd/internal/vidsim"
)

func TestKNNSearchFacade(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	recs := randomRecords(r, 10, 800)
	x, err := BuildIndex(10, recs, IndexOptions{})
	if err != nil {
		t.Fatal(err)
	}
	q := recs[17].FP
	matches, stats, err := x.KNNSearch(q, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 5 || matches[0].Dist != 0 {
		t.Fatalf("self kNN: %+v", matches)
	}
	if !stats.Exact {
		t.Fatal("exhaustive-budget search not exact")
	}
	approx, stats2, err := x.KNNSearch(q, 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	if stats2.Leaves > 2 || len(approx) == 0 {
		t.Fatalf("approximate variant broken: %+v %+v", approx, stats2)
	}
}

func TestVAFileFacade(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	recs := randomRecords(r, 12, 1000)
	x, err := BuildIndex(12, recs, IndexOptions{})
	if err != nil {
		t.Fatal(err)
	}
	va, err := NewVAFile(x, 4)
	if err != nil {
		t.Fatal(err)
	}
	q := recs[3].FP
	got, stats, err := va.RangeSearch(q, 70)
	if err != nil {
		t.Fatal(err)
	}
	want, err := x.ScanSearch(q, 70)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("VA %d results, scan %d", len(got), len(want))
	}
	if stats.Skipped == 0 {
		t.Fatal("VA-file skipped nothing")
	}
	if _, err := NewVAFile(x, 3); err == nil {
		t.Fatal("bits=3 accepted")
	}
}

func TestMergeIndexesFacade(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	a, err := BuildIndex(8, randomRecords(r, 8, 300), IndexOptions{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildIndex(8, randomRecords(r, 8, 200), IndexOptions{})
	if err != nil {
		t.Fatal(err)
	}
	m, err := MergeIndexes(a, b, 0)
	if err != nil {
		t.Fatal(err)
	}
	if m.Len() != 500 {
		t.Fatalf("merged len %d", m.Len())
	}
	// Queries still work on the merged index.
	sq := StatQuery{Alpha: 0.8, Model: IsoNormal{D: 8, Sigma: 10}}
	if _, _, err := m.StatSearch(make([]byte, 8), sq); err != nil {
		t.Fatal(err)
	}
	// Incompatible merge fails.
	c, err := BuildIndex(9, randomRecords(r, 9, 10), IndexOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := MergeIndexes(a, c, 0); err == nil {
		t.Fatal("incompatible merge accepted")
	}
}

func TestAlternativeModelsFacade(t *testing.T) {
	vid := GenerateVideo(77, 120)
	samples := CollectDistortionSamples([]*Video{vid}, vidsim.Gamma{G: 1.5}, ExtractConfig{})
	if len(samples) < 100 {
		t.Fatalf("only %d distortion samples", len(samples))
	}
	mix, err := FitMixtureNormal(FingerprintDims, samples)
	if err != nil {
		t.Fatal(err)
	}
	emp, err := FitEmpirical(FingerprintDims, samples)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(4))
	x, err := BuildIndex(FingerprintDims, randomRecords(r, FingerprintDims, 500), IndexOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []Model{
		IsoLaplace{D: FingerprintDims, Sigma: 15},
		IsoStudentT{D: FingerprintDims, Sigma: 15, Nu: 4},
		mix, emp,
	} {
		if _, plan, err := x.StatSearch(make([]byte, FingerprintDims), StatQuery{Alpha: 0.8, Model: m}); err != nil {
			t.Fatalf("%T: %v", m, err)
		} else if plan.Mass < 0.8 {
			t.Fatalf("%T: mass %v", m, plan.Mass)
		}
	}
}

func TestSpatialVoteConfigFacade(t *testing.T) {
	ref := GenerateVideo(88, 160)
	cfg := CBCDConfig{}
	cfg.Vote.SpatialTolerance = 6
	cfg.Workers = 2
	in := NewVideoIndexer(cfg)
	in.AddSequence(1, ref)
	det, err := in.Build()
	if err != nil {
		t.Fatal(err)
	}
	dets, err := det.DetectClip(ref)
	if err != nil {
		t.Fatal(err)
	}
	if len(dets) == 0 || dets[0].ID != 1 {
		t.Fatalf("spatial self-detection failed: %+v", dets)
	}
	if dets[0].ScaleX < 0.95 || dets[0].ScaleX > 1.05 {
		t.Fatalf("identity copy fitted scale %v", dets[0].ScaleX)
	}
}
