// Package router implements a fault-tolerant scatter/gather coordinator
// over s3serve shard replicas: the multi-node deployment of the S³
// index, where the reference corpus is split into key-range shard
// groups (contiguous slices of the global Hilbert order) and each group
// is served by one or more s3serve replicas.
//
// A search request is scattered to every group, each group's subquery
// driven against its replica set with per-request deadline propagation
// (X-S3-Deadline), capped-exponential-backoff retries against sibling
// replicas, hedged requests once the in-flight attempt exceeds a recent
// latency quantile, and a consecutive-failure circuit breaker plus
// bounded in-flight budget in front of every backend. Results merge
// byte-identically to a single-node engine holding the whole corpus:
// the store's canonical record order makes stat/range merging pure
// concatenation in group-index order, and k-NN a k-way merge by
// distance. When a group cannot answer, the partial-result policy
// decides: strict (default) fails the request with 503, degrade returns
// the reachable groups' results plus a missingShards list.
package router

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"s3cbcd/internal/httpapi"
	"s3cbcd/internal/obs"
)

// deadlineHeader propagates the remaining request budget to backends
// (and is honored inbound, so routers stack).
const deadlineHeader = httpapi.DeadlineHeader

// Partial-result policies.
const (
	// PartialStrict fails the whole request when any shard group is
	// unavailable: the answer is complete or it is an error.
	PartialStrict = "strict"
	// PartialDegrade answers with the reachable groups' results and a
	// missingShards list naming the group indices that dropped out.
	PartialDegrade = "degrade"
)

// Defaults for the zero Options values.
const (
	DefaultMaxInFlight      = 64
	DefaultBackendInFlight  = 32
	DefaultRetries          = 2
	DefaultRetryBackoff     = 5 * time.Millisecond
	DefaultMaxRetryBackoff  = 100 * time.Millisecond
	DefaultHedgeQuantile    = 0.9
	DefaultHedgeMin         = time.Millisecond
	DefaultRequestTimeout   = 10 * time.Second
	DefaultBreakerThreshold = 5
	DefaultBreakerCooldown  = 500 * time.Millisecond
	DefaultProbeInterval    = time.Second
)

// shedRetryAfter is the Retry-After hint on load-shed 503s, matching
// the backend HTTP layer's.
const shedRetryAfter = 1

// maxRequestBody bounds an inbound search request (8 MiB — a large
// batch of fingerprints is well under 1 MiB).
const maxRequestBody = 8 << 20

// probeTimeoutCap bounds a single health probe regardless of interval.
const probeTimeoutCap = 2 * time.Second

// Options configures a Router. The zero value of every field but
// Groups selects the default; negative values disable where noted.
type Options struct {
	// Groups is the placement: Groups[g] lists the replica base URLs
	// serving shard group g, in key-range order. Required. A URL may
	// appear in several groups (a backend serving more than one shard);
	// its breaker, budget and latency window are shared.
	Groups [][]string

	// Client issues every backend request (nil = a fresh http.Client;
	// per-request contexts carry all timeouts).
	Client *http.Client

	// MaxInFlight bounds concurrently coordinated client requests;
	// excess is shed immediately with 503 + Retry-After, never queued
	// (0 = DefaultMaxInFlight, < 0 = unlimited).
	MaxInFlight int
	// BackendInFlight bounds concurrent requests per backend
	// (0 = DefaultBackendInFlight, < 0 = unlimited).
	BackendInFlight int

	// Retries is the per-group budget of sibling retries after
	// retryable failures (0 = DefaultRetries, < 0 = no retries).
	Retries int
	// RetryBackoff is the base backoff before the first retry, doubling
	// per retry up to MaxRetryBackoff (zeros = defaults).
	RetryBackoff    time.Duration
	MaxRetryBackoff time.Duration

	// HedgeQuantile is the recent-latency quantile an in-flight attempt
	// must exceed before a hedge fires at a sibling (0 =
	// DefaultHedgeQuantile, < 0 = hedging off).
	HedgeQuantile float64
	// HedgeMin floors the hedge delay (0 = DefaultHedgeMin).
	HedgeMin time.Duration
	// LatencyWindow is the per-backend latency window size feeding the
	// hedge quantile (0 = obs.DefaultWindowSize).
	LatencyWindow int

	// RequestTimeout caps a client request end to end, tightened
	// further by an inbound X-S3-Deadline (0 = DefaultRequestTimeout,
	// < 0 = none).
	RequestTimeout time.Duration

	// BreakerThreshold is the consecutive-failure count that trips a
	// backend's circuit breaker (0 = DefaultBreakerThreshold, < 0 =
	// breaker disabled). BreakerCooldown is the open → half-open delay.
	BreakerThreshold int
	BreakerCooldown  time.Duration

	// ProbeInterval is the /healthz polling period (0 =
	// DefaultProbeInterval, < 0 = prober disabled).
	ProbeInterval time.Duration

	// Partial is the default partial-result policy, PartialStrict or
	// PartialDegrade ("" = strict); ?partial= overrides per request.
	Partial string

	// TraceRate samples client requests for distributed tracing: each
	// search carries a trace with probability TraceRate (0 disables
	// sampling; a request can always opt in with ?trace=1 or an inbound
	// sampled X-S3-Trace header). Traced requests propagate context to
	// backends and assemble their in-band reports into one span tree.
	TraceRate float64
	// TraceSeed seeds the trace sampler.
	TraceSeed int64
	// TraceStoreSize bounds the in-memory debug trace store (finished
	// traces kept for /debug/traces); 0 selects the obs default.
	TraceStoreSize int
	// SlowQuery, when positive, logs every traced request at least this
	// slow through Logger, with the assembled span tree attached.
	SlowQuery time.Duration

	// Metrics receives the s3_router_* families (nil = new registry).
	Metrics *obs.Registry
	// Logger receives structured logs (nil = slog.Default()).
	Logger *slog.Logger
}

// Router is the scatter/gather coordinator; it serves the same search
// API as a single s3serve (plus its own /healthz, /stats, /metrics),
// so clients need not know whether they talk to one node or a fleet.
type Router struct {
	opt    Options
	groups [][]*backend
	// backends is each unique backend once, in first-appearance order.
	backends []*backend
	// rrs rotates each group's replica preference for load spread.
	rrs []atomic.Uint64

	client       *http.Client
	mux          *http.ServeMux
	reg          *obs.Registry
	met          routerMetrics
	log          *slog.Logger
	sem          chan struct{} // nil = unlimited
	probeTimeout time.Duration
	sampler      *obs.Sampler
	traces       *obs.TraceStore

	stop chan struct{}
	once sync.Once
	wg   sync.WaitGroup
}

// New builds a Router over the given placement and starts its health
// prober. Close releases the prober.
func New(opt Options) (*Router, error) {
	if len(opt.Groups) == 0 {
		return nil, errors.New("router: at least one shard group required")
	}
	applyDefaults(&opt)
	if opt.Partial != PartialStrict && opt.Partial != PartialDegrade {
		return nil, fmt.Errorf("router: partial policy %q (want %q or %q)", opt.Partial, PartialStrict, PartialDegrade)
	}
	r := &Router{
		opt:    opt,
		client: opt.Client,
		mux:    http.NewServeMux(),
		reg:    opt.Metrics,
		log:    opt.Logger,
		stop:   make(chan struct{}),
	}
	if r.client == nil {
		r.client = &http.Client{}
	}
	if r.reg == nil {
		r.reg = obs.NewRegistry()
	}
	if r.log == nil {
		r.log = slog.Default()
	}
	r.met = newRouterMetrics(r.reg)
	if opt.TraceRate > 0 {
		r.sampler = obs.NewSampler(opt.TraceRate, opt.TraceSeed)
	}
	r.traces = obs.NewTraceStore(opt.TraceStoreSize)
	r.traces.RegisterMetrics(r.reg)
	if opt.MaxInFlight > 0 {
		r.sem = make(chan struct{}, opt.MaxInFlight)
	}
	r.probeTimeout = opt.ProbeInterval
	if r.probeTimeout <= 0 || r.probeTimeout > probeTimeoutCap {
		r.probeTimeout = probeTimeoutCap
	}

	budget := int64(opt.BackendInFlight)
	if budget < 0 {
		budget = 0 // tryAcquire treats <= 0 as unbounded
	}
	byURL := make(map[string]*backend)
	for g, urls := range opt.Groups {
		if len(urls) == 0 {
			return nil, fmt.Errorf("router: group %d has no replicas", g)
		}
		seen := make(map[string]bool, len(urls))
		grp := make([]*backend, 0, len(urls))
		for _, u := range urls {
			u = strings.TrimRight(u, "/")
			if u == "" {
				return nil, fmt.Errorf("router: group %d has an empty backend URL", g)
			}
			if seen[u] {
				return nil, fmt.Errorf("router: group %d lists %q twice", g, u)
			}
			seen[u] = true
			be := byURL[u]
			if be == nil {
				be = &backend{
					url:    u,
					lat:    obs.NewWindow(opt.LatencyWindow),
					br:     newBreaker(opt.BreakerThreshold, opt.BreakerCooldown, r.met.breakerTrips),
					budget: budget,
				}
				backendSeries(r.reg, be)
				byURL[u] = be
				r.backends = append(r.backends, be)
			}
			grp = append(grp, be)
		}
		r.groups = append(r.groups, grp)
	}
	r.rrs = make([]atomic.Uint64, len(r.groups))

	r.mux.Handle("GET /metrics", r.reg.Handler())
	r.handle("GET /healthz", "/healthz", r.handleHealthz)
	r.handle("GET /stats", "/stats", r.handleStats)
	r.handle("POST /search/statistical", "/search/statistical",
		r.search("/search/statistical", func() any { return new(statReply) }, r.mergeStat))
	r.handle("POST /search/statistical/batch", "/search/statistical/batch",
		r.search("/search/statistical/batch", func() any { return new(batchReply) }, r.mergeBatch))
	r.handle("POST /search/range", "/search/range",
		r.search("/search/range", func() any { return new(rangeReply) }, r.mergeRange))
	r.handle("POST /search/knn", "/search/knn",
		r.search("/search/knn", func() any { return new(knnReply) }, r.mergeKNN))

	if opt.ProbeInterval > 0 {
		r.startProber(opt.ProbeInterval)
	}
	return r, nil
}

func applyDefaults(opt *Options) {
	if opt.MaxInFlight == 0 {
		opt.MaxInFlight = DefaultMaxInFlight
	}
	if opt.BackendInFlight == 0 {
		opt.BackendInFlight = DefaultBackendInFlight
	}
	switch {
	case opt.Retries == 0:
		opt.Retries = DefaultRetries
	case opt.Retries < 0:
		opt.Retries = 0
	}
	if opt.RetryBackoff <= 0 {
		opt.RetryBackoff = DefaultRetryBackoff
	}
	if opt.MaxRetryBackoff <= 0 {
		opt.MaxRetryBackoff = DefaultMaxRetryBackoff
	}
	if opt.HedgeQuantile == 0 {
		opt.HedgeQuantile = DefaultHedgeQuantile
	}
	if opt.HedgeMin <= 0 {
		opt.HedgeMin = DefaultHedgeMin
	}
	if opt.RequestTimeout == 0 {
		opt.RequestTimeout = DefaultRequestTimeout
	}
	if opt.BreakerThreshold == 0 {
		opt.BreakerThreshold = DefaultBreakerThreshold
	}
	if opt.BreakerCooldown <= 0 {
		opt.BreakerCooldown = DefaultBreakerCooldown
	}
	if opt.ProbeInterval == 0 {
		opt.ProbeInterval = DefaultProbeInterval
	}
	if opt.Partial == "" {
		opt.Partial = PartialStrict
	}
}

// Close stops the health prober and waits for its goroutines.
func (r *Router) Close() {
	r.once.Do(func() { close(r.stop) })
	r.wg.Wait()
}

// Metrics returns the router's registry (also served at GET /metrics).
func (r *Router) Metrics() *obs.Registry { return r.reg }

// Traces returns the router's bounded debug trace store, for mounting
// /debug/traces on a debug listener.
func (r *Router) Traces() *obs.TraceStore { return r.traces }

func (r *Router) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	w.Header().Set("Server", "s3router")
	r.mux.ServeHTTP(w, req)
}

// handle registers h wrapped in the route's latency histogram and
// status-class counters, mirroring the backend HTTP layer.
func (r *Router) handle(pattern, route string, h http.HandlerFunc) {
	hist, classes := routeMetrics(r.reg, route)
	r.mux.HandleFunc(pattern, func(w http.ResponseWriter, req *http.Request) {
		r.met.inflight.Add(1)
		defer r.met.inflight.Add(-1)
		t0 := time.Now()
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		h(sw, req)
		hist.ObserveSince(t0)
		if i := sw.code/100 - 2; i >= 0 && i < len(classes) {
			classes[i].Inc()
		}
	})
}

// statusWriter captures the response status for the route metrics.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

const jsonContentType = "application/json; charset=utf-8"

func reply(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", jsonContentType)
	json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, code int, format string, args ...interface{}) {
	w.Header().Set("Content-Type", jsonContentType)
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

// Wire shapes, mirroring internal/httpapi exactly: field order and tags
// must match for merged responses to be byte-identical to single-node
// ones.
type matchJSON struct {
	ID   uint32  `json:"id"`
	TC   uint32  `json:"tc"`
	X    uint16  `json:"x"`
	Y    uint16  `json:"y"`
	Dist float64 `json:"dist,omitempty"`
}

// statReply keeps the plan raw: it is data-independent given a shared
// depth, so the first group's bytes are every group's bytes.
type statReply struct {
	Matches []matchJSON     `json:"matches"`
	Plan    json.RawMessage `json:"plan"`
	Trace   json.RawMessage `json:"trace,omitempty"`
}

type batchReply struct {
	Results [][]matchJSON   `json:"results"`
	Trace   json.RawMessage `json:"trace,omitempty"`
}

type rangeReply struct {
	Matches []matchJSON     `json:"matches"`
	Blocks  json.RawMessage `json:"blocks"`
	Trace   json.RawMessage `json:"trace,omitempty"`
}

type knnReply struct {
	Matches []matchJSON     `json:"matches"`
	Exact   bool            `json:"exact"`
	Scanned int             `json:"scanned"`
	Trace   json.RawMessage `json:"trace,omitempty"`
}

// traced lets the attempt path pull the in-band trace report a sampled
// backend attached to its response, for grafting into the router's
// span tree.
type traced interface{ traceRaw() json.RawMessage }

func (r *statReply) traceRaw() json.RawMessage  { return r.Trace }
func (r *batchReply) traceRaw() json.RawMessage { return r.Trace }
func (r *rangeReply) traceRaw() json.RawMessage { return r.Trace }
func (r *knnReply) traceRaw() json.RawMessage   { return r.Trace }

// mergeFn builds the client response body from the per-group results
// (nil for missing groups) and the missing group indices. search owns
// writing it, so a trace report can ride along when the request was
// traced — map keys marshal in sorted order, keeping untraced merged
// responses byte-identical to single-node ones.
type mergeFn func(body []byte, outs []any, missing []int) map[string]interface{}

// traceFor decides whether this client request is traced: always when
// an upstream router sent a sampled X-S3-Trace context (routers stack),
// always on ?trace=1, otherwise by the sampler. A malformed header is
// indistinguishable from no header. Returns nil when untraced.
func (r *Router) traceFor(req *http.Request, route string) *obs.Trace {
	var tr *obs.Trace
	if h := req.Header.Get(obs.TraceHeader); h != "" {
		if sc, ok := obs.ParseTraceHeader(h); ok && sc.Sampled {
			tr = obs.NewTraceFrom(sc)
		}
	}
	if tr == nil && (req.URL.Query().Get("trace") == "1" || r.sampler.Sample()) {
		tr = obs.NewTrace()
	}
	if tr != nil {
		tr.SetName("s3router " + route)
	}
	return tr
}

// finishTrace closes out a traced request: the failure (if any) is
// recorded, the assembled report is built once, filed into the debug
// trace store, logged when the request breached the slow-query
// threshold, and returned for in-band attachment to the response.
func (r *Router) finishTrace(route string, tr *obs.Trace, err error) obs.TraceReport {
	if tr == nil {
		return obs.TraceReport{}
	}
	if err != nil {
		tr.SetError(err.Error())
	}
	rep := tr.Report()
	r.traces.Add(rep)
	if r.opt.SlowQuery > 0 && time.Duration(rep.TotalMicros)*time.Microsecond >= r.opt.SlowQuery {
		r.log.Warn("slow query",
			"route", route,
			"traceId", rep.TraceID,
			"micros", rep.TotalMicros,
			"error", rep.Error,
			"trace", rep)
	}
	return rep
}

// search builds the scatter/gather handler for one search route.
func (r *Router) search(path string, newOut func() any, merge mergeFn) http.HandlerFunc {
	return func(w http.ResponseWriter, req *http.Request) {
		t0 := time.Now()
		// Admission: take a slot now or shed now. The router never queues
		// excess load — queued requests burn their deadlines waiting and
		// then scatter doomed subqueries at the fleet.
		if r.sem != nil {
			select {
			case r.sem <- struct{}{}:
				defer func() { <-r.sem }()
			default:
				r.met.shed.Inc()
				// A shed is over before any span opens; it still must not
				// vanish from the trace views, so a traced shed files an
				// errored root with the reason annotated.
				if tr := r.traceFor(req, path); tr != nil {
					tr.Annotate(0, "shed", "router at capacity")
					r.finishTrace(path, tr, fmt.Errorf("router at capacity (%d in flight)", cap(r.sem)))
				}
				w.Header().Set("Retry-After", strconv.Itoa(shedRetryAfter))
				httpError(w, http.StatusServiceUnavailable, "router at capacity (%d in flight)", cap(r.sem))
				return
			}
		}

		tr := r.traceFor(req, path)

		partial := r.opt.Partial
		if p := req.URL.Query().Get("partial"); p != "" {
			if p != PartialStrict && p != PartialDegrade {
				r.finishTrace(path, tr, fmt.Errorf("partial=%q invalid", p))
				httpError(w, http.StatusBadRequest, "partial=%q (want %q or %q)", p, PartialStrict, PartialDegrade)
				return
			}
			partial = p
		}

		// Read one byte past the cap so an oversized body is rejected
		// outright rather than silently truncated into corrupt JSON that
		// would surface as a confusing backend 400.
		body, err := io.ReadAll(io.LimitReader(req.Body, maxRequestBody+1))
		if err != nil {
			r.finishTrace(path, tr, err)
			httpError(w, http.StatusBadRequest, "reading request: %v", err)
			return
		}
		if len(body) > maxRequestBody {
			r.finishTrace(path, tr, errors.New("request body too large"))
			httpError(w, http.StatusRequestEntityTooLarge, "request body exceeds %d bytes", maxRequestBody)
			return
		}

		ctx := req.Context()
		if h := req.Header.Get(deadlineHeader); h != "" {
			ms, err := strconv.ParseInt(h, 10, 64)
			if err != nil {
				r.finishTrace(path, tr, fmt.Errorf("bad %s header", deadlineHeader))
				httpError(w, http.StatusBadRequest, "%s: %q is not a unix-milliseconds deadline", deadlineHeader, h)
				return
			}
			var cancel context.CancelFunc
			ctx, cancel = context.WithDeadline(ctx, time.UnixMilli(ms))
			defer cancel()
		}
		if r.opt.RequestTimeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, r.opt.RequestTimeout)
			defer cancel()
		}

		if tr != nil {
			// Admission + parse are over; the span records what the request
			// cost before any backend work began.
			tr.SpanSince("admission", 0, t0)
			ctx = obs.WithTrace(ctx, tr)
		}

		outs, errs := r.scatter(ctx, path, body, newOut)

		// A defective query fails identically on every shard; surface the
		// first backend 4xx as-is rather than as an availability problem.
		for _, err := range errs {
			var be *backendError
			if errors.As(err, &be) && !be.retryable && be.status >= 400 && be.status < 500 {
				r.finishTrace(path, tr, err)
				httpError(w, be.status, "%s", be.msg)
				return
			}
		}

		var missing []int
		var lastErr error
		for g, err := range errs {
			if err != nil {
				missing = append(missing, g)
				lastErr = err
			}
		}
		if len(missing) > 0 {
			if partial == PartialStrict || len(missing) == len(r.groups) {
				r.finishTrace(path, tr, lastErr)
				// A request whose own budget expired (inbound X-S3-Deadline
				// or RequestTimeout) is a timeout, not fleet unavailability:
				// 504 and no Retry-After, so clients don't retry a query
				// that cannot fit its own deadline.
				if errors.Is(lastErr, context.DeadlineExceeded) {
					httpError(w, http.StatusGatewayTimeout,
						"shard groups %v unavailable: %v", missing, lastErr)
					return
				}
				w.Header().Set("Retry-After", strconv.Itoa(shedRetryAfter))
				httpError(w, http.StatusServiceUnavailable,
					"shard groups %v unavailable: %v", missing, lastErr)
				return
			}
			r.met.partials.Inc()
			r.met.missingShards.Add(int64(len(missing)))
			if tr != nil {
				tr.Annotate(0, "missingShards", fmt.Sprint(missing))
			}
			r.log.Warn("degraded response", "route", path, "missingShards", missing, "err", lastErr)
		}
		t1 := time.Now()
		resp := merge(body, outs, missing)
		if tr != nil {
			tr.SpanSince("merge", 0, t1)
			resp["trace"] = r.finishTrace(path, tr, nil)
		}
		reply(w, resp)
	}
}

// scatter fans the request out to every group concurrently.
func (r *Router) scatter(ctx context.Context, path string, body []byte, newOut func() any) ([]any, []error) {
	outs := make([]any, len(r.groups))
	errs := make([]error, len(r.groups))
	var wg sync.WaitGroup
	for g := range r.groups {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			outs[g], errs[g] = r.groupDo(ctx, g, http.MethodPost, path, body, newOut)
		}(g)
	}
	wg.Wait()
	return outs, errs
}

// addMissing marks a degraded response. Complete responses are left
// untouched — that is what keeps them byte-identical to single-node.
func addMissing(resp map[string]interface{}, missing []int) {
	if len(missing) > 0 {
		resp["missingShards"] = missing
	}
}

func (r *Router) mergeStat(_ []byte, outs []any, missing []int) map[string]interface{} {
	matches := make([]matchJSON, 0)
	var plan json.RawMessage
	for _, o := range outs {
		if o == nil {
			continue
		}
		sr := o.(*statReply)
		if plan == nil {
			plan = sr.Plan
		}
		matches = append(matches, sr.Matches...)
	}
	resp := map[string]interface{}{"matches": matches, "plan": plan}
	addMissing(resp, missing)
	return resp
}

func (r *Router) mergeBatch(_ []byte, outs []any, missing []int) map[string]interface{} {
	var results [][]matchJSON
	for _, o := range outs {
		if o == nil {
			continue
		}
		br := o.(*batchReply)
		if results == nil {
			results = make([][]matchJSON, len(br.Results))
			for i := range results {
				results[i] = make([]matchJSON, 0)
			}
		}
		for i, ms := range br.Results {
			if i < len(results) {
				results[i] = append(results[i], ms...)
			}
		}
	}
	resp := map[string]interface{}{"results": results}
	addMissing(resp, missing)
	return resp
}

func (r *Router) mergeRange(_ []byte, outs []any, missing []int) map[string]interface{} {
	matches := make([]matchJSON, 0)
	var blocks json.RawMessage
	for _, o := range outs {
		if o == nil {
			continue
		}
		rr := o.(*rangeReply)
		if blocks == nil {
			blocks = rr.Blocks
		}
		matches = append(matches, rr.Matches...)
	}
	resp := map[string]interface{}{"matches": matches, "blocks": blocks}
	addMissing(resp, missing)
	return resp
}

func (r *Router) mergeKNN(body []byte, outs []any, missing []int) map[string]interface{} {
	lists := make([][]matchJSON, 0, len(outs))
	exact := len(missing) == 0
	scanned, total := 0, 0
	for _, o := range outs {
		if o == nil {
			continue
		}
		kr := o.(*knnReply)
		lists = append(lists, kr.Matches)
		exact = exact && kr.Exact
		scanned += kr.Scanned
		total += len(kr.Matches)
	}
	var kreq struct {
		K int `json:"k"`
	}
	k := total
	if json.Unmarshal(body, &kreq) == nil && kreq.K > 0 {
		k = kreq.K
	}
	// k-way merge by ascending distance; the strict < keeps equal
	// distances in group-index order, matching the property the
	// single-node heap only guarantees for distinct distances.
	merged := make([]matchJSON, 0, min(k, total))
	idx := make([]int, len(lists))
	for len(merged) < k {
		best := -1
		for g, ms := range lists {
			if idx[g] >= len(ms) {
				continue
			}
			if best == -1 || ms[idx[g]].Dist < lists[best][idx[best]].Dist {
				best = g
			}
		}
		if best == -1 {
			break
		}
		merged = append(merged, lists[best][idx[best]])
		idx[best]++
	}
	resp := map[string]interface{}{"matches": merged, "exact": exact, "scanned": scanned}
	addMissing(resp, missing)
	return resp
}

// handleHealthz reports the router's view of the fleet: down when some
// group has no reachable replica (strict queries will fail), degraded
// when any backend is less than healthy, ok otherwise.
func (r *Router) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	status := "ok"
	for _, be := range r.backends {
		if be.health() != healthHealthy {
			status = "degraded"
			break
		}
	}
	for _, grp := range r.groups {
		up := false
		for _, be := range grp {
			if be.health() != healthDown {
				up = true
				break
			}
		}
		if !up {
			status = "down"
			break
		}
	}
	backends := make([]map[string]interface{}, len(r.backends))
	for i, be := range r.backends {
		backends[i] = map[string]interface{}{
			"url":      be.url,
			"health":   be.health().String(),
			"breaker":  be.br.snapshot().String(),
			"records":  be.records.Load(),
			"inflight": be.inflight.Load(),
		}
	}
	reply(w, map[string]interface{}{
		"status":   status,
		"groups":   len(r.groups),
		"backends": backends,
	})
}

// handleStats aggregates fleet shape: per-group records use the largest
// replica report (replicas hold the same data; a lagging probe reports
// 0, not less data).
func (r *Router) handleStats(w http.ResponseWriter, _ *http.Request) {
	var records int64
	for _, grp := range r.groups {
		var best int64
		for _, be := range grp {
			if n := be.records.Load(); n > best {
				best = n
			}
		}
		records += best
	}
	reply(w, map[string]interface{}{
		"groups":   len(r.groups),
		"backends": len(r.backends),
		"records":  records,
	})
}
