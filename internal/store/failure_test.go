package store

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"s3cbcd/internal/hilbert"
)

// TestLoadRecordsTruncatedFile injects a truncated record area: the
// header and section table promise more records than the file holds, so
// reads past the end must fail cleanly rather than return garbage.
func TestLoadRecordsTruncatedFile(t *testing.T) {
	curve := hilbert.MustNew(6, 4)
	db := MustBuild(curve, randRecords(rand.New(rand.NewSource(1)), curve, 50))
	path := filepath.Join(t.TempDir(), "db.s3db")
	if err := db.WriteFile(path, 3); err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, info.Size()-64); err != nil {
		t.Fatal(err)
	}
	fl, err := Open(path)
	if err != nil {
		t.Fatal(err) // header and table are intact
	}
	defer fl.Close()
	if _, err := fl.LoadRecords(0, fl.Count()); err == nil {
		t.Fatal("reading past the truncation succeeded")
	}
	// Early records are still readable.
	if _, err := fl.LoadRecords(0, 5); err != nil {
		t.Fatalf("reading intact prefix failed: %v", err)
	}
}

// TestOpenRejectsTruncatedSectionTable removes part of the section table.
func TestOpenRejectsTruncatedSectionTable(t *testing.T) {
	curve := hilbert.MustNew(6, 4)
	db := MustBuild(curve, randRecords(rand.New(rand.NewSource(2)), curve, 10))
	path := filepath.Join(t.TempDir(), "db.s3db")
	if err := db.WriteFile(path, 8); err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, 28+100); err != nil { // header + partial table
		t.Fatal(err)
	}
	if _, err := Open(path); err == nil {
		t.Fatal("truncated section table accepted")
	}
}

// TestOpenRejectsAbsurdHeader fuzzes header fields that must be bounded.
func TestOpenRejectsAbsurdHeader(t *testing.T) {
	curve := hilbert.MustNew(6, 4)
	db := MustBuild(curve, randRecords(rand.New(rand.NewSource(3)), curve, 10))
	path := filepath.Join(t.TempDir(), "db.s3db")
	if err := db.WriteFile(path, 2); err != nil {
		t.Fatal(err)
	}
	orig, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	corrupt := func(off int, val byte) string {
		data := append([]byte(nil), orig...)
		data[off] = val
		p := filepath.Join(t.TempDir(), "bad.s3db")
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	if _, err := Open(corrupt(4, 99)); err == nil { // version
		t.Error("bad version accepted")
	}
	if _, err := Open(corrupt(8, 0)); err == nil { // dims = 0
		t.Error("zero dims accepted")
	}
	if _, err := Open(corrupt(24, 0xFF)); err == nil { // huge section bits
		t.Error("oversized section bits accepted")
	}
}
