package core

// Concurrency stress for the live index, meant to run under -race (see
// the Makefile race target and the CI race job): writers ingest disjoint
// record streams while readers hammer every query path, a compactor
// forces compactions and one video is deleted mid-flight. Invariants:
//
//   - no lost records: after the dust settles, a whole-space range query
//     returns exactly the surviving (ingested minus deleted) records;
//   - snapshot monotonicity: the generation a reader observes never
//     decreases;
//   - queries never error while writes and compactions race with them.

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"

	"s3cbcd/internal/store"
)

func TestLiveIndexConcurrentStress(t *testing.T) {
	li, err := OpenLiveIndex(liveTestCurve(), "", LiveOptions{
		Depth:           liveTestDepth,
		MemtableRecords: 48,
		CompactSegments: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer li.Close()

	const (
		writers   = 3
		perWriter = 300
		batchSize = 7
		doomedID  = 99
		doomedN   = 40
	)
	stop := make(chan struct{})
	var writeWG, readWG sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}

	ingestStream := func(id uint32, total int, seed int64) {
		r := rand.New(rand.NewSource(seed))
		for done := 0; done < total; {
			n := batchSize
			if left := total - done; n > left {
				n = left
			}
			batch := make([]store.Record, n)
			for i := range batch {
				rec := randLiveRecord(r)
				rec.ID = id
				rec.TC = uint32(done + i)
				batch[i] = rec
			}
			if err := li.Ingest(batch); err != nil {
				fail(err)
				return
			}
			done += n
		}
	}

	// Writers: disjoint ids, unique time codes per id.
	for w := 0; w < writers; w++ {
		writeWG.Add(1)
		go func(w int) {
			defer writeWG.Done()
			ingestStream(uint32(w+1), perWriter, int64(w))
		}(w)
	}

	// The doomed video: fully ingested, then deleted once. No writer
	// touches its id afterwards, so it must be gone at the end.
	writeWG.Add(1)
	go func() {
		defer writeWG.Done()
		ingestStream(doomedID, doomedN, 1000)
		if err := li.DeleteVideo(doomedID); err != nil {
			fail(err)
		}
	}()

	// Readers: every query path, plus generation monotonicity.
	for g := 0; g < 2; g++ {
		readWG.Add(1)
		go func(g int) {
			defer readWG.Done()
			r := rand.New(rand.NewSource(int64(2000 + g)))
			ctx := context.Background()
			sq := StatQuery{Alpha: 0.9, Model: IsoNormal{D: liveTestDims, Sigma: 2.5}}
			var lastGen uint64
			for {
				select {
				case <-stop:
					return
				default:
				}
				if gen := li.Gen(); gen < lastGen {
					fail(fmt.Errorf("snapshot generation regressed: %d after %d", gen, lastGen))
					return
				} else {
					lastGen = gen
				}
				q := randLiveRecord(r).FP
				if _, _, err := li.SearchStat(ctx, q, sq); err != nil {
					fail(err)
					return
				}
				if _, _, err := li.SearchRange(ctx, q, 4); err != nil {
					fail(err)
					return
				}
				if _, _, err := li.SearchKNN(ctx, q, 5, 0); err != nil {
					fail(err)
					return
				}
				if _, err := li.SearchStatBatch(ctx, [][]byte{q, q}, sq); err != nil {
					fail(err)
					return
				}
			}
		}(g)
	}

	// Compactor: force compactions on top of the background ones.
	readWG.Add(1)
	go func() {
		defer readWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := li.Compact(); err != nil {
				fail(err)
				return
			}
		}
	}()

	writeWG.Wait()
	close(stop)
	readWG.Wait()
	if firstErr != nil {
		t.Fatal(firstErr)
	}

	// No lost records: a range query covering the entire space must
	// return exactly the surviving records.
	if err := li.Compact(); err != nil {
		t.Fatal(err)
	}
	wantTotal := writers * perWriter
	if li.Len() != wantTotal {
		t.Fatalf("live index holds %d records, want %d", li.Len(), wantTotal)
	}
	diag := math.Sqrt(float64(liveTestDims)) * 32
	center := make([]byte, liveTestDims)
	for i := range center {
		center[i] = 16
	}
	ms, _, err := li.SearchRange(context.Background(), center, diag)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != wantTotal {
		t.Fatalf("whole-space range query returned %d records, want %d", len(ms), wantTotal)
	}
	seen := make(map[[2]uint32]bool)
	for _, m := range ms {
		if m.ID == doomedID {
			t.Fatalf("deleted video %d resurfaced (tc %d)", m.ID, m.TC)
		}
		key := [2]uint32{m.ID, m.TC}
		if seen[key] {
			t.Fatalf("duplicate record id=%d tc=%d", m.ID, m.TC)
		}
		seen[key] = true
	}
	for w := 0; w < writers; w++ {
		for tc := 0; tc < perWriter; tc++ {
			if !seen[[2]uint32{uint32(w + 1), uint32(tc)}] {
				t.Fatalf("lost record id=%d tc=%d", w+1, tc)
			}
		}
	}
}
