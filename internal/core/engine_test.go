package core

import (
	"context"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"testing/quick"
)

// newEngineFixture builds one index plus engines at several shard counts
// over the same database.
func newEngineFixture(t *testing.T, dims, n int, seed int64, shardCounts []int) (*Index, map[int]*Engine) {
	t.Helper()
	db := testDB(t, dims, n, seed)
	ix, err := NewIndex(db, 0)
	if err != nil {
		t.Fatal(err)
	}
	engines := make(map[int]*Engine, len(shardCounts))
	for _, n := range shardCounts {
		engines[n] = NewEngine(ix, n, 4)
	}
	return ix, engines
}

// forceParallelRefine drops the cutoff so every sharded refinement takes
// the concurrent path, restoring it when the test ends.
func forceParallelRefine(t *testing.T) {
	t.Helper()
	old := refineParallelCutoff
	refineParallelCutoff = 0
	t.Cleanup(func() { refineParallelCutoff = old })
}

// TestEngineShardedIdentityQuick is the property test of the sharding
// invariant: for every query and every shard count, the engine's
// statistical, range and k-NN results are byte-identical — including
// order — to the unsharded Index path.
func TestEngineShardedIdentityQuick(t *testing.T) {
	forceParallelRefine(t)
	ix, engines := newEngineFixture(t, 6, 2500, 41, []int{2, 3, 8})
	db := ix.DB()
	r := rand.New(rand.NewSource(42))
	ctx := context.Background()

	f := func(aRaw, sRaw, eRaw, kRaw uint8) bool {
		q, _ := distortedQuery(r, db, 14)
		alpha := 0.5 + float64(aRaw)/512 // [0.5, 1)
		sigma := 4 + float64(sRaw%32)    // [4, 36)
		eps := 20 + 3*float64(eRaw%64)   // [20, 209]
		k := 1 + int(kRaw%16)            // [1, 16]
		sq := StatQuery{Alpha: alpha, Model: IsoNormal{D: db.Dims(), Sigma: sigma}}

		wantStat, wantPlan, err := ix.SearchStat(q, sq)
		if err != nil {
			t.Fatal(err)
		}
		wantRange, wantRPlan, err := ix.SearchRange(q, eps)
		if err != nil {
			t.Fatal(err)
		}
		wantKNN, wantKStats, err := ix.SearchKNN(q, k, 0)
		if err != nil {
			t.Fatal(err)
		}
		for n, e := range engines {
			gotStat, gotPlan, err := e.SearchStat(ctx, q, sq)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(gotStat, wantStat) || !reflect.DeepEqual(gotPlan, wantPlan) {
				t.Logf("shards=%d alpha=%v sigma=%v: stat mismatch (%d vs %d matches)",
					n, alpha, sigma, len(gotStat), len(wantStat))
				return false
			}
			gotRange, gotRPlan, err := e.SearchRange(ctx, q, eps)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(gotRange, wantRange) || !reflect.DeepEqual(gotRPlan, wantRPlan) {
				t.Logf("shards=%d eps=%v: range mismatch (%d vs %d matches)",
					n, eps, len(gotRange), len(wantRange))
				return false
			}
			gotKNN, gotKStats, err := e.SearchKNN(ctx, q, k, 0)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(gotKNN, wantKNN) || gotKStats != wantKStats {
				t.Logf("shards=%d k=%d: knn mismatch", n, k)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestEngineEmptyResultIdentity pins the subtle part of byte-identity:
// queries selecting nothing must return nil (not an empty slice) exactly
// like the sequential path, so reflect.DeepEqual holds there too.
func TestEngineEmptyResultIdentity(t *testing.T) {
	forceParallelRefine(t)
	ix, engines := newEngineFixture(t, 6, 400, 7, []int{4})
	q := make([]byte, 6) // origin corner; tiny radius finds nothing
	want, _, err := ix.SearchRange(q, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if want != nil {
		t.Skip("fixture unexpectedly has a record at the origin")
	}
	got, _, err := engines[4].SearchRange(context.Background(), q, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if got != nil {
		t.Fatalf("sharded empty range result is %#v, want nil", got)
	}
}

// TestEngineBatchMatchesSequential checks that every batch entry equals
// the corresponding single-query result, for all three query types.
func TestEngineBatchMatchesSequential(t *testing.T) {
	ix, engines := newEngineFixture(t, 6, 1500, 11, []int{3})
	e := engines[3]
	db := ix.DB()
	r := rand.New(rand.NewSource(12))
	queries := make([][]byte, 60)
	for i := range queries {
		queries[i], _ = distortedQuery(r, db, 10)
	}
	sq := StatQuery{Alpha: 0.8, Model: IsoNormal{D: 6, Sigma: 10}}
	ctx := context.Background()

	stat, err := e.SearchStatBatch(ctx, queries, sq)
	if err != nil {
		t.Fatal(err)
	}
	rng, err := e.SearchRangeBatch(ctx, queries, 60)
	if err != nil {
		t.Fatal(err)
	}
	knn, knnStats, err := e.SearchKNNBatch(ctx, queries, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range queries {
		wantS, _, err := ix.SearchStat(q, sq)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(stat[i], wantS) {
			t.Fatalf("batch stat %d differs from sequential", i)
		}
		wantR, _, err := ix.SearchRange(q, 60)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(rng[i], wantR) {
			t.Fatalf("batch range %d differs from sequential", i)
		}
		wantK, wantKS, err := ix.SearchKNN(q, 5, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(knn[i], wantK) || knnStats[i] != wantKS {
			t.Fatalf("batch knn %d differs from sequential", i)
		}
	}
}

// TestEngineConcurrentUse hammers one engine from many goroutines; run
// under -race it proves queries share no mutable state.
func TestEngineConcurrentUse(t *testing.T) {
	forceParallelRefine(t)
	ix, engines := newEngineFixture(t, 6, 1200, 21, []int{4})
	e := engines[4]
	db := ix.DB()
	sq := StatQuery{Alpha: 0.8, Model: IsoNormal{D: 6, Sigma: 12}}
	ctx := context.Background()

	const goroutines = 8
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for i := 0; i < 20; i++ {
				q, _ := distortedQuery(r, db, 12)
				got, _, err := e.SearchStat(ctx, q, sq)
				if err != nil {
					errs <- err
					return
				}
				want, _, err := ix.SearchStat(q, sq)
				if err != nil {
					errs <- err
					return
				}
				if !reflect.DeepEqual(got, want) {
					t.Errorf("concurrent stat result differs from sequential")
					return
				}
				if _, _, err := e.SearchRange(ctx, q, 50); err != nil {
					errs <- err
					return
				}
				if _, err := e.SearchStatBatch(ctx, [][]byte{q, q}, sq); err != nil {
					errs <- err
					return
				}
			}
		}(int64(100 + g))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestEngineContextCancellation checks a canceled context aborts both
// single and batch searches with the context's error.
func TestEngineContextCancellation(t *testing.T) {
	ix, engines := newEngineFixture(t, 6, 500, 31, []int{2})
	e := engines[2]
	q := ix.DB().FP(0)
	sq := StatQuery{Alpha: 0.8, Model: IsoNormal{D: 6, Sigma: 10}}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := e.SearchStat(ctx, q, sq); err == nil {
		t.Error("SearchStat ignored canceled context")
	}
	if _, _, err := e.SearchRange(ctx, q, 50); err == nil {
		t.Error("SearchRange ignored canceled context")
	}
	if _, _, err := e.SearchKNN(ctx, q, 3, 0); err == nil {
		t.Error("SearchKNN ignored canceled context")
	}
	if _, err := e.SearchStatBatch(ctx, [][]byte{q}, sq); err == nil {
		t.Error("SearchStatBatch ignored canceled context")
	}
	if _, err := e.SearchRangeBatch(ctx, [][]byte{q}, 50); err == nil {
		t.Error("SearchRangeBatch ignored canceled context")
	}
	if _, _, err := e.SearchKNNBatch(ctx, [][]byte{q}, 3, 0); err == nil {
		t.Error("SearchKNNBatch ignored canceled context")
	}
}

// TestEngineBadQueries checks validation errors surface through every
// engine entry point.
func TestEngineBadQueries(t *testing.T) {
	_, engines := newEngineFixture(t, 6, 300, 51, []int{2})
	e := engines[2]
	sq := StatQuery{Alpha: 0.8, Model: IsoNormal{D: 6, Sigma: 10}}
	ctx := context.Background()
	short := []byte{1, 2, 3}
	if _, _, err := e.SearchStat(ctx, short, sq); err == nil {
		t.Error("SearchStat accepted wrong-dimension query")
	}
	if _, _, err := e.SearchRange(ctx, short, 10); err == nil {
		t.Error("SearchRange accepted wrong-dimension query")
	}
	if _, _, err := e.SearchRange(ctx, make([]byte, 6), -1); err == nil {
		t.Error("SearchRange accepted negative radius")
	}
	if _, err := e.SearchStatBatch(ctx, [][]byte{make([]byte, 6), short}, sq); err == nil {
		t.Error("SearchStatBatch accepted wrong-dimension query")
	}
	bad := StatQuery{Alpha: 0, Model: IsoNormal{D: 6, Sigma: 10}}
	if _, _, err := e.SearchStat(ctx, make([]byte, 6), bad); err == nil {
		t.Error("SearchStat accepted alpha = 0")
	}
}
