package experiments

import (
	"math/rand"
	"sync"

	"s3cbcd/internal/fingerprint"
	"s3cbcd/internal/store"
	"s3cbcd/internal/vidsim"
)

// VideoCorpus generates n procedural reference sequences of the given
// length, deterministically from seed.
func VideoCorpus(n, frames int, seed int64) []*vidsim.Sequence {
	seqs := make([]*vidsim.Sequence, n)
	for i := range seqs {
		cfg := vidsim.DefaultConfig(seed + int64(i))
		cfg.MinShot, cfg.MaxShot = 25, 50
		seqs[i] = vidsim.Generate(cfg, frames)
	}
	return seqs
}

// seedPool is a cached pool of real extracted fingerprints used to give
// large synthetic corpora the clustering structure of video fingerprints
// (near-duplicates of background points, unique moving-object points).
var seedPool struct {
	once sync.Once
	fps  []fingerprint.Fingerprint
}

func pool() []fingerprint.Fingerprint {
	seedPool.once.Do(func() {
		for _, seq := range VideoCorpus(8, 150, 424242) {
			for _, l := range fingerprint.Extract(seq, fingerprint.DefaultConfig()) {
				seedPool.fps = append(seedPool.fps, l.FP)
			}
		}
	})
	return seedPool.fps
}

// FPCorpus emits n database records with video-like statistics: each
// record is a real extracted fingerprint jittered by a small per-component
// noise, so the corpus contains the heavy near-duplication the paper
// describes ("several video clips can be duplicated 600 times"). IDs are
// assigned in blocks of ~50 records (one block ~ one key-framed sequence)
// and TCs increase inside a block.
func FPCorpus(n int, seed int64) []store.Record {
	seeds := pool()
	r := rand.New(rand.NewSource(seed))
	recs := make([]store.Record, n)
	const perID = 50
	for i := range recs {
		base := seeds[r.Intn(len(seeds))]
		fp := make([]byte, fingerprint.D)
		for j := range fp {
			v := float64(base[j]) + r.NormFloat64()*4
			if v < 0 {
				v = 0
			}
			if v > 255 {
				v = 255
			}
			fp[j] = byte(v)
		}
		recs[i] = store.Record{
			FP: fp,
			ID: uint32(i / perID),
			TC: uint32(i % perID * 12),
		}
	}
	return recs
}

// DistortedQueries implements the query construction of Section V-A:
// randomly select nq real fingerprints S in the database and build
// Q = S + ΔS with ΔS ~ N(0, sigmaQ) per component, quantized back to the
// byte grid. It returns the queries and the index of each query's source
// record.
func DistortedQueries(db *store.DB, nq int, sigmaQ float64, seed int64) ([][]byte, []int) {
	r := rand.New(rand.NewSource(seed))
	queries := make([][]byte, nq)
	src := make([]int, nq)
	for i := range queries {
		idx := r.Intn(db.Len())
		fp := db.FP(idx)
		q := make([]byte, len(fp))
		for j, b := range fp {
			v := float64(b) + r.NormFloat64()*sigmaQ
			if v < 0 {
				v = 0
			}
			if v > 255 {
				v = 255
			}
			q[j] = byte(v + 0.5)
		}
		queries[i] = q
		src[i] = idx
	}
	return queries, src
}
